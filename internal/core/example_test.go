package core_test

import (
	"fmt"
	"sync"

	"gridqr/internal/core"
	"gridqr/internal/grid"
	"gridqr/internal/lapack"
	"gridqr/internal/matrix"
	"gridqr/internal/mpi"
	"gridqr/internal/scalapack"
)

// ExampleFactorize runs QCG-TSQR on a two-cluster in-process grid and
// verifies the factorization.
func ExampleFactorize() {
	const m, n = 4000, 8
	g := grid.SmallTestGrid(2, 2, 1) // 2 clusters × 2 procs
	a := matrix.Random(m, n, 1)
	offsets := scalapack.BlockOffsets(m, g.Procs())

	w := mpi.NewWorld(g)
	var mu sync.Mutex
	var r, q *matrix.Dense
	w.Run(func(ctx *mpi.Ctx) {
		comm := mpi.WorldComm(ctx)
		in := core.Input{M: m, N: n, Offsets: offsets,
			Local: scalapack.Distribute(a, offsets, ctx.Rank())}
		res := core.Factorize(comm, in, core.Config{Tree: core.TreeGrid, WantQ: true})
		qf := scalapack.Collect(comm, res.QLocal, offsets, n)
		if ctx.Rank() == 0 {
			mu.Lock()
			r, q = res.R, qf
			mu.Unlock()
		}
	})
	fmt.Println("R upper triangular:", matrix.IsUpperTriangular(r, 0))
	fmt.Println("orthogonal:", matrix.OrthoError(q) < 1e-10)
	fmt.Println("residual small:", matrix.ResidualQR(a, q, r) < 1e-12)
	// Output:
	// R upper triangular: true
	// orthogonal: true
	// residual small: true
}

// ExampleAccumulator streams row blocks through the flat-tree TSQR
// recurrence and reads back the R factor of everything seen.
func ExampleAccumulator() {
	const n = 4
	a := matrix.Random(1000, n, 2)
	acc := core.NewAccumulator(n)
	for off := 0; off < 1000; off += 100 {
		acc.Push(a.View(off, 0, 100, n))
	}
	r := acc.R()

	full := core.FactorizeLocal(a, 0)
	lapack.NormalizeRSigns(full, nil)
	fmt.Println("rows:", acc.Rows())
	fmt.Println("matches full QR:", matrix.Equal(r, full, 1e-10))
	// Output:
	// rows: 1000
	// matches full QR: true
}

// ExampleLeastSquares fits a line to distributed samples.
func ExampleLeastSquares() {
	const m = 1000
	g := grid.SmallTestGrid(1, 2, 1)
	offsets := scalapack.BlockOffsets(m, 2)
	// y = 3 + 2t, sampled exactly.
	a := matrix.New(m, 2)
	b := matrix.New(m, 1)
	for i := 0; i < m; i++ {
		t := float64(i) / (m - 1)
		a.Set(i, 0, 1)
		a.Set(i, 1, t)
		b.Set(i, 0, 3+2*t)
	}
	w := mpi.NewWorld(g)
	var mu sync.Mutex
	var x *matrix.Dense
	w.Run(func(ctx *mpi.Ctx) {
		comm := mpi.WorldComm(ctx)
		in := core.Input{M: m, N: 2, Offsets: offsets,
			Local: scalapack.Distribute(a, offsets, ctx.Rank())}
		bl := scalapack.Distribute(b, offsets, ctx.Rank())
		xs, _ := core.LeastSquares(comm, in, bl, core.Config{})
		if ctx.Rank() == 0 {
			mu.Lock()
			x = xs
			mu.Unlock()
		}
	})
	fmt.Printf("intercept %.1f slope %.1f\n", x.At(0, 0), x.At(1, 0))
	// Output:
	// intercept 3.0 slope 2.0
}
