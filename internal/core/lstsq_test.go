package core

import (
	"math"
	"sync"
	"testing"

	"gridqr/internal/blas"
	"gridqr/internal/grid"
	"gridqr/internal/lapack"
	"gridqr/internal/matrix"
	"gridqr/internal/mpi"
	"gridqr/internal/scalapack"
)

// runLS solves min‖Ax−b‖ distributed and returns x (from rank 0) and the
// replicated residuals.
func runLS(t *testing.T, g *grid.Grid, a, b *matrix.Dense) (*matrix.Dense, []float64) {
	t.Helper()
	m, n := a.Rows, a.Cols
	p := g.Procs()
	offsets := scalapack.BlockOffsets(m, p)
	w := mpi.NewWorld(g)
	var mu sync.Mutex
	var x *matrix.Dense
	var resid []float64
	w.Run(func(ctx *mpi.Ctx) {
		comm := mpi.WorldComm(ctx)
		in := Input{M: m, N: n, Offsets: offsets, Local: scalapack.Distribute(a, offsets, ctx.Rank())}
		bl := scalapack.Distribute(b, offsets, ctx.Rank())
		xs, rs := LeastSquares(comm, in, bl, Config{Tree: TreeGrid})
		if ctx.Rank() == 0 {
			mu.Lock()
			x, resid = xs, rs
			mu.Unlock()
		}
	})
	return x, resid
}

func TestLeastSquaresExactSystem(t *testing.T) {
	// b = A·x_true exactly: recover x_true with zero residual.
	g := grid.SmallTestGrid(2, 2, 1)
	m, n := 200, 5
	a := matrix.Random(m, n, 1)
	xTrue := matrix.Random(n, 1, 2)
	b := matrix.New(m, 1)
	for i := 0; i < m; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += a.At(i, j) * xTrue.At(j, 0)
		}
		b.Set(i, 0, s)
	}
	x, resid := runLS(t, g, a, b)
	for j := 0; j < n; j++ {
		if math.Abs(x.At(j, 0)-xTrue.At(j, 0)) > 1e-10 {
			t.Fatalf("x[%d] = %g want %g", j, x.At(j, 0), xTrue.At(j, 0))
		}
	}
	if resid[0] > 1e-10 {
		t.Fatalf("residual %g for consistent system", resid[0])
	}
}

func TestLeastSquaresMatchesNormalEquations(t *testing.T) {
	// For a noisy system the solution must satisfy AᵀA·x = Aᵀb.
	g := grid.SmallTestGrid(2, 2, 1)
	m, n := 300, 4
	a := matrix.Random(m, n, 3)
	b := matrix.Random(m, 1, 4)
	x, resid := runLS(t, g, a, b)
	// Check the normal equations directly.
	for k := 0; k < n; k++ {
		var lhs, rhs float64
		for i := 0; i < m; i++ {
			var ax float64
			for j := 0; j < n; j++ {
				ax += a.At(i, j) * x.At(j, 0)
			}
			lhs += a.At(i, k) * ax
			rhs += a.At(i, k) * b.At(i, 0)
		}
		if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(rhs)) {
			t.Fatalf("normal equation %d violated: %g vs %g", k, lhs, rhs)
		}
	}
	// Residual must equal the true residual norm.
	var ssq float64
	for i := 0; i < m; i++ {
		var ax float64
		for j := 0; j < n; j++ {
			ax += a.At(i, j) * x.At(j, 0)
		}
		d := b.At(i, 0) - ax
		ssq += d * d
	}
	if math.Abs(resid[0]-math.Sqrt(ssq)) > 1e-9*(1+resid[0]) {
		t.Fatalf("reported residual %g vs actual %g", resid[0], math.Sqrt(ssq))
	}
}

func TestLeastSquaresMultipleRHS(t *testing.T) {
	g := grid.SmallTestGrid(1, 4, 1)
	m, n, nrhs := 120, 3, 4
	a := matrix.Random(m, n, 5)
	b := matrix.Random(m, nrhs, 6)
	x, resid := runLS(t, g, a, b)
	if x.Rows != n || x.Cols != nrhs || len(resid) != nrhs {
		t.Fatalf("shapes: x %d×%d, resid %d", x.Rows, x.Cols, len(resid))
	}
	// Each column solved independently: compare against single-RHS runs.
	for j := 0; j < nrhs; j++ {
		bj := b.View(0, j, m, 1).Clone()
		xj, rj := runLS(t, g, a, bj)
		for k := 0; k < n; k++ {
			if math.Abs(x.At(k, j)-xj.At(k, 0)) > 1e-10 {
				t.Fatalf("rhs %d: x[%d] differs from single solve", j, k)
			}
		}
		if math.Abs(resid[j]-rj[0]) > 1e-9 {
			t.Fatalf("rhs %d: residual differs", j)
		}
	}
}

func TestLeastSquaresPolynomialFit(t *testing.T) {
	// Fit y = 2 − 3t + 0.5t² on noiseless samples: exact recovery.
	g := grid.SmallTestGrid(2, 2, 1)
	m := 400
	a := matrix.New(m, 3)
	b := matrix.New(m, 1)
	for i := 0; i < m; i++ {
		tt := float64(i) / float64(m-1)
		a.Set(i, 0, 1)
		a.Set(i, 1, tt)
		a.Set(i, 2, tt*tt)
		b.Set(i, 0, 2-3*tt+0.5*tt*tt)
	}
	x, _ := runLS(t, g, a, b)
	want := []float64{2, -3, 0.5}
	for j, wv := range want {
		if math.Abs(x.At(j, 0)-wv) > 1e-10 {
			t.Fatalf("coefficient %d = %g want %g", j, x.At(j, 0), wv)
		}
	}
}

func TestMinNorm(t *testing.T) {
	// A is 4×200 (4 equations, 200 unknowns); we distribute Aᵀ (200×4).
	g := grid.SmallTestGrid(2, 2, 1)
	mUnknowns, nEq := 200, 4
	at := matrix.Random(mUnknowns, nEq, 81)
	b := matrix.Random(nEq, 1, 82).Col(0)
	offsets := scalapack.BlockOffsets(mUnknowns, g.Procs())
	w := mpi.NewWorld(g)
	var mu sync.Mutex
	var x *matrix.Dense
	w.Run(func(ctx *mpi.Ctx) {
		comm := mpi.WorldComm(ctx)
		in := Input{M: mUnknowns, N: nEq, Offsets: offsets,
			Local: scalapack.Distribute(at, offsets, ctx.Rank())}
		xl := MinNorm(comm, in, b, Config{Tree: TreeGrid})
		xf := scalapack.Collect(comm, xl, offsets, 1)
		if ctx.Rank() == 0 {
			mu.Lock()
			x = xf
			mu.Unlock()
		}
	})
	// 1. A·x = b: rows of A are columns of Aᵀ.
	for e := 0; e < nEq; e++ {
		var s float64
		for u := 0; u < mUnknowns; u++ {
			s += at.At(u, e) * x.At(u, 0)
		}
		if math.Abs(s-b[e]) > 1e-10*(1+math.Abs(b[e])) {
			t.Fatalf("equation %d: %g vs %g", e, s, b[e])
		}
	}
	// 2. Minimum norm: x must lie in range(Aᵀ), i.e. be orthogonal to
	// null(A). Verify ‖x‖ <= ‖x + z‖ for perturbations z in the null
	// space: equivalently x = Aᵀw for some w. Solve for w by LS and
	// check the representation error.
	normalEq := matrix.New(nEq, nEq)
	rhs := make([]float64, nEq)
	for i := 0; i < nEq; i++ {
		for j := 0; j < nEq; j++ {
			var s float64
			for u := 0; u < mUnknowns; u++ {
				s += at.At(u, i) * at.At(u, j)
			}
			normalEq.Set(i, j, s)
		}
		var s float64
		for u := 0; u < mUnknowns; u++ {
			s += at.At(u, i) * x.At(u, 0)
		}
		rhs[i] = s
	}
	// Solve normalEq·w = rhs by Cholesky.
	if !lapack.Dpotrf(normalEq) {
		t.Fatal("Gram matrix not SPD")
	}
	blas.Dtrsv(blas.Trans, normalEq, rhs)
	blas.Dtrsv(blas.NoTrans, normalEq, rhs)
	for u := 0; u < mUnknowns; u++ {
		var s float64
		for i := 0; i < nEq; i++ {
			s += at.At(u, i) * rhs[i]
		}
		if math.Abs(s-x.At(u, 0)) > 1e-8*(1+math.Abs(x.At(u, 0))) {
			t.Fatalf("x not in range(Aᵀ) at %d: %g vs %g", u, s, x.At(u, 0))
		}
	}
}
