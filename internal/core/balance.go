package core

import (
	"gridqr/internal/grid"
)

// BalanceRows implements the load-balancing extension the paper sketches
// in Section III: instead of requiring equal computing power per group
// (which forces the meta-scheduler to book half-empty nodes), "adapt the
// number of rows attributed to each domain as a function of the
// processing power dedicated to a domain".
//
// It returns row offsets over the grid's processes where each process
// receives rows proportional to its cluster's kernel rate at panel width
// n, subject to a floor of n rows per process (every TSQR domain must be
// at least square). The total is exactly m.
func BalanceRows(g *grid.Grid, m, n int) []int {
	p := g.Procs()
	if m < p*n {
		panic("core: BalanceRows needs at least N rows per process")
	}
	rates := make([]float64, p)
	var total float64
	for r := 0; r < p; r++ {
		rates[r] = g.KernelGflops(g.ClusterOf(r), n)
		total += rates[r]
	}
	// Largest-remainder apportionment of m rows over the rates, with an
	// n-row floor applied first.
	floor := n
	spare := m - p*floor
	rows := make([]int, p)
	rema := make([]float64, p)
	assigned := 0
	for r := 0; r < p; r++ {
		exact := float64(spare) * rates[r] / total
		rows[r] = int(exact)
		rema[r] = exact - float64(rows[r])
		assigned += rows[r]
	}
	// Distribute the leftover rows to the largest remainders.
	for left := spare - assigned; left > 0; left-- {
		best := 0
		for r := 1; r < p; r++ {
			if rema[r] > rema[best] {
				best = r
			}
		}
		rows[best]++
		rema[best] = -1
	}
	offsets := make([]int, p+1)
	for r := 0; r < p; r++ {
		offsets[r+1] = offsets[r] + floor + rows[r]
	}
	return offsets
}
