package core

import (
	"errors"
	"sync"
	"testing"

	"gridqr/internal/grid"
	"gridqr/internal/lapack"
	"gridqr/internal/matrix"
	"gridqr/internal/mpi"
	"gridqr/internal/scalapack"
)

// ftOut is one rank's outcome of a fault-tolerant run; ranks killed by
// the plan leave the zero value (they never return).
type ftOut struct {
	res *FTResult
	err error
}

// runFT executes FactorizeFT on every rank of a faulty world and collects
// the per-rank outcomes.
func runFT(t *testing.T, g *grid.Grid, plan *mpi.FaultPlan, m, n int, cfg Config, seed int64,
	opts ...mpi.Option) ([]ftOut, *mpi.World, *matrix.Dense) {
	t.Helper()
	global := matrix.Random(m, n, seed)
	outs, w := runFTGlobal(t, g, plan, global, cfg, opts...)
	return outs, w, global
}

// runFTGlobal is runFT over a caller-provided global matrix.
func runFTGlobal(t *testing.T, g *grid.Grid, plan *mpi.FaultPlan, global *matrix.Dense, cfg Config,
	opts ...mpi.Option) ([]ftOut, *mpi.World) {
	t.Helper()
	p := g.Procs()
	m, n := global.Rows, global.Cols
	offsets := scalapack.BlockOffsets(m, p)
	w := mpi.NewWorld(g, append(opts, mpi.WithFaults(plan))...)
	outs := make([]ftOut, p)
	var mu sync.Mutex
	w.Run(func(ctx *mpi.Ctx) {
		comm := mpi.WorldComm(ctx)
		in := Input{M: m, N: n, Offsets: offsets, Local: scalapack.Distribute(global, offsets, ctx.Rank())}
		res, err := FactorizeFT(comm, in, cfg)
		mu.Lock()
		outs[ctx.Rank()] = ftOut{res, err}
		mu.Unlock()
	})
	return outs, w
}

func ftConfig() Config { return Config{FT: FTOptions{Enabled: true}} }

func checkFTR(t *testing.T, out ftOut, global *matrix.Dense) {
	t.Helper()
	if out.err != nil {
		t.Fatalf("rank 0 error: %v", out.err)
	}
	if out.res == nil || out.res.R == nil {
		t.Fatalf("rank 0 has no R")
	}
	r := out.res.R.Clone()
	lapack.NormalizeRSigns(r, nil)
	if !matrix.Equal(r, refR(global), 1e-10) {
		t.Fatalf("FT R differs from sequential reference")
	}
}

func TestFTFaultFree(t *testing.T) {
	g := grid.SmallTestGrid(2, 2, 2) // 8 procs, 2 clusters
	outs, _, global := runFT(t, g, nil, 64, 5, ftConfig(), 1)
	checkFTR(t, outs[0], global)
	if outs[0].res.Stats.Epochs != 1 {
		t.Errorf("fault-free Epochs = %d, want 1", outs[0].res.Stats.Epochs)
	}
	for r, o := range outs {
		if o.err != nil {
			t.Errorf("rank %d error: %v", r, o.err)
		}
	}
}

func TestFTDisabledDelegates(t *testing.T) {
	g := grid.SmallTestGrid(2, 2, 1)
	cfg := Config{} // FT off
	outs, _, global := runFT(t, g, nil, 40, 4, cfg, 2)
	checkFTR(t, outs[0], global)
}

func TestFTSingleFailureRecovers(t *testing.T) {
	// Rank 5 dies right before its first tree send (ops: 0 leaf charge,
	// 1 buddy send, 2 buddy recv, 3 tree send). The survivors re-form the
	// tree; rank 6 re-contributes 5's replicated leaf.
	g := grid.SmallTestGrid(2, 4, 1) // 8 procs, 2 clusters of 4
	plan := mpi.NewFaultPlan(1).Kill(5, 3)
	outs, w, global := runFT(t, g, plan, 64, 5, ftConfig(), 3)
	checkFTR(t, outs[0], global)
	st := outs[0].res.Stats
	if st.Epochs != 2 {
		t.Errorf("Epochs = %d, want 2 (one aborted, one clean)", st.Epochs)
	}
	if st.CombinesReused == 0 {
		t.Errorf("rank 0 reused no combines; the re-formed tree should hit the cache")
	}
	if got := st.Dead; len(got) != 1 || got[0] != 5 {
		t.Errorf("Stats.Dead = %v, want [5]", got)
	}
	if dead := w.DeadRanks(); len(dead) != 1 || dead[0] != 5 {
		t.Errorf("DeadRanks = %v, want [5]", dead)
	}
	// Surviving non-coordinator ranks all concluded without error.
	for r, o := range outs {
		if r == 5 {
			continue
		}
		if o.err != nil {
			t.Errorf("rank %d error: %v", r, o.err)
		}
	}
}

func TestFTTooManyFailuresTypedAbort(t *testing.T) {
	g := grid.SmallTestGrid(2, 4, 1)
	cfg := ftConfig()
	cfg.FT.MaxFailures = 1
	// Both die right before their first tree send (op 3, as in the
	// single-failure test), so two deaths are reported against a budget
	// of one.
	plan := mpi.NewFaultPlan(1).Kill(3, 3).Kill(5, 3)
	outs, _, _ := runFT(t, g, plan, 64, 5, cfg, 4)
	var fe *FTError
	if !errors.As(outs[0].err, &fe) || fe.Reason != FTTooManyFailures {
		t.Fatalf("rank 0 error = %v, want FTError{TooManyFailures}", outs[0].err)
	}
	if len(fe.Dead) < 2 {
		t.Errorf("Dead = %v, want both kills reported", fe.Dead)
	}
}

func TestFTBuddyPairLostIsDataLost(t *testing.T) {
	// Ranks 2 and 3 are each other's recovery path (3 is 2's buddy); both
	// dying before replication makes 2's leaf unrecoverable.
	g := grid.SmallTestGrid(2, 4, 1)
	plan := mpi.NewFaultPlan(1).Kill(2, 0).Kill(3, 0)
	outs, _, _ := runFT(t, g, plan, 64, 5, ftConfig(), 5)
	var fe *FTError
	if !errors.As(outs[0].err, &fe) || fe.Reason != FTDataLost {
		t.Fatalf("rank 0 error = %v, want FTError{DataLost}", outs[0].err)
	}
	if len(fe.Lost) == 0 {
		t.Errorf("Lost is empty, want the unrecoverable leaves listed")
	}
}

func TestFTCoordinatorLostTypedAbort(t *testing.T) {
	g := grid.SmallTestGrid(2, 2, 1) // 4 procs
	plan := mpi.NewFaultPlan(1).Kill(0, 2)
	outs, _, _ := runFT(t, g, plan, 40, 4, ftConfig(), 6)
	for r := 1; r < len(outs); r++ {
		var fe *FTError
		if !errors.As(outs[r].err, &fe) || fe.Reason != FTCoordinatorLost {
			t.Errorf("rank %d error = %v, want FTError{CoordinatorLost}", r, outs[r].err)
		}
	}
}

// TestFTDeterminismRegression is the satellite determinism check: two
// runs with the same FaultPlan seed produce bitwise-identical R factors
// and identical trace event counts, regardless of goroutine scheduling.
func TestFTDeterminismRegression(t *testing.T) {
	g := grid.SmallTestGrid(2, 4, 1)
	run := func() ([]float64, []int) {
		plan := mpi.NewFaultPlan(42).
			Kill(5, 3).
			Drop(mpi.AnyRank, mpi.AnyRank, mpi.AnyTag, 0.2, 1). // one retransmit per sender
			Delay(mpi.AnyRank, mpi.AnyRank, mpi.AnyTag, 0.3, 1e-4, 0)
		outs, w, _ := runFT(t, g, plan, 64, 5, ftConfig(), 7,
			mpi.Virtual(), mpi.Traced())
		if outs[0].err != nil {
			t.Fatalf("rank 0 error: %v", outs[0].err)
		}
		counts := make([]int, g.Procs())
		for r, evs := range w.Events() {
			counts[r] = len(evs)
		}
		return append([]float64(nil), outs[0].res.R.Data...), counts
	}
	r1, c1 := run()
	r2, c2 := run()
	if len(r1) != len(r2) {
		t.Fatalf("R sizes differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("R not bitwise identical at %d: %v vs %v", i, r1[i], r2[i])
		}
	}
	for r := range c1 {
		if c1[r] != c2[r] {
			t.Fatalf("rank %d event count differs: %d vs %d", r, c1[r], c2[r])
		}
	}
}
