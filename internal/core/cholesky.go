package core

import (
	"fmt"

	"gridqr/internal/blas"
	"gridqr/internal/flops"
	"gridqr/internal/lapack"
	"gridqr/internal/matrix"
	"gridqr/internal/mpi"
)

// Cholesky is the distributed communication-avoiding Cholesky
// factorization A = RᵀR of a symmetric positive definite matrix,
// completing the trio the paper's introduction names ("we discuss how our
// approach generalizes to all one-sided factorizations (QR, LU and
// Cholesky)") and its conclusion cites (Ballard, Demmel, Holtz, Schwartz).
//
// The N×N matrix is row-distributed like everything else in this library
// (only the upper triangle is referenced). Each panel costs exactly one
// broadcast of jb factored rows — no per-column traffic — so the message
// count is O((N/NB)·log P) against the Θ(N·log P) of per-column
// right-looking variants.

// CholeskyConfig controls the factorization.
type CholeskyConfig struct {
	// NB is the panel width (0 = lapack.DefaultBlock). Row blocks must
	// be multiples of it.
	NB int
}

// CholeskyResult holds the outcome.
type CholeskyResult struct {
	// OK reports positive definiteness; on false the factorization
	// stopped at a non-positive pivot.
	OK bool
	// R is the N×N upper triangular factor gathered on rank 0 (nil
	// elsewhere and in cost-only mode).
	R *matrix.Dense
	// Panels is the number of panel iterations performed.
	Panels int
}

const cholBcastTag = 1<<16 + 4096 // +panel; disjoint from the CALU ranges

// CholeskyFactorize runs the distributed factorization on a
// world-spanning communicator. Input.Local (this rank's rows of the
// symmetric matrix) is overwritten with the corresponding rows of R.
func CholeskyFactorize(comm *mpi.Comm, in Input, cfg CholeskyConfig) *CholeskyResult {
	in.validate(comm)
	nb := cfg.NB
	if nb <= 0 {
		nb = lapack.DefaultBlock
	}
	if in.M != in.N {
		panic("core: Cholesky requires a square matrix")
	}
	ctx := comm.Ctx()
	p := comm.Size()
	for r := 0; r < p; r++ {
		if rows := in.Offsets[r+1] - in.Offsets[r]; rows%nb != 0 {
			panic(fmt.Sprintf("core: Cholesky needs row blocks divisible by NB=%d (rank %d has %d)",
				nb, r, rows))
		}
	}
	me := comm.Rank()
	myOff, myEnd := in.Offsets[me], in.Offsets[me+1]
	res := &CholeskyResult{OK: true}
	n := in.N

	for j := 0; j < n; j += nb {
		jb := min(nb, n-j)
		res.Panels++
		owner := ownerOf(in.Offsets, j)
		rest := n - j - jb
		// The owner factors its jb panel rows and prepares the broadcast
		// payload: [ok, R_diag (jb×jb), R_offdiag (jb×rest)].
		payload := make([]float64, 1+jb*jb+jb*rest)
		if me == owner && ctx.HasData() {
			lo := j - myOff
			diag := in.Local.View(lo, j, jb, jb)
			if !lapack.Dpotrf(diag) {
				payload[0] = -1
			} else {
				payload[0] = 1
				// Clear the subdiagonal garbage of the factored block.
				for c := 0; c < jb; c++ {
					for r := c + 1; r < jb; r++ {
						diag.Set(r, c, 0)
					}
				}
				if rest > 0 {
					// R_off = R_diag⁻ᵀ · A[j:j+jb, j+jb:].
					off := in.Local.View(lo, j+jb, jb, rest)
					blas.Dtrsm(blas.Left, blas.Trans, false, 1, diag, off)
				}
				packPanel(payload[1:], in.Local.View(lo, j, jb, n-j), jb)
			}
		} else if me == owner {
			payload[0] = 1
		}
		if me == owner {
			ctx.Charge(flops.GEQRF(jb, jb)/4+float64(jb)*float64(jb)*float64(rest), jb)
		}
		// One broadcast per panel to the ranks that still hold active rows.
		var active []int
		for r := 0; r < p; r++ {
			if in.Offsets[r+1] > j {
				active = append(active, r)
			}
		}
		payload = bcastAmong(comm, active, me, owner, payload, cholBcastTag+res.Panels)
		if myEnd <= j {
			continue // my rows are done; failure is learned after the loop
		}
		if payload[0] < 0 {
			res.OK = false
			break // active ranks all see the failed panel together
		}
		// Trailing update on my rows below the panel:
		// A[g, c] -= Σ_t R[t, g]·R[t, c] for my g ≥ j+jb, c ≥ g.
		lo := max(0, j+jb-myOff)
		rows := (myEnd - myOff) - lo
		if rest == 0 || rows <= 0 {
			continue
		}
		ctx.Charge(float64(rows)*float64(rest)*float64(jb), jb)
		if !ctx.HasData() {
			continue
		}
		rpanel := matrix.FromColMajor(jb, rest, payload[1+jb*jb:])
		for li := 0; li < rows; li++ {
			g := myOff + lo + li
			gc := g - j - jb // my row's column index within rpanel
			for c := gc; c < rest; c++ {
				var s float64
				for t := 0; t < jb; t++ {
					s += rpanel.At(t, gc) * rpanel.At(t, c)
				}
				col := in.Local.Col(j + jb + c)
				col[lo+li] -= s
			}
		}
	}
	// Agree on success before gathering, so ranks whose rows finished
	// before a failing panel do not deadlock the gather.
	okFlag := 1.0
	if !res.OK {
		okFlag = 0
	}
	if comm.Allreduce([]float64{okFlag}, opMin)[0] == 0 {
		res.OK = false
		return res
	}
	res.R = caqrGatherR(comm, in)
	return res
}

// opMin keeps the elementwise minimum in dst.
func opMin(dst, src []float64) {
	for i, v := range src {
		if v < dst[i] {
			dst[i] = v
		}
	}
}

// packPanel serializes the jb×(jb+rest) factored panel rows column by
// column into buf (diag block first, then the off-diagonal block — the
// natural order of the source view).
func packPanel(buf []float64, panel *matrix.Dense, jb int) {
	idx := 0
	for c := 0; c < panel.Cols; c++ {
		col := panel.Col(c)[:jb]
		copy(buf[idx:idx+jb], col)
		idx += jb
	}
}
