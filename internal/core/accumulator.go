package core

import (
	"fmt"

	"gridqr/internal/lapack"
	"gridqr/internal/matrix"
)

// Accumulator maintains the R factor of all rows pushed so far using the
// flat-tree TSQR recurrence — the out-of-core/streaming regime of the
// paper's related work (§II-C cites Gunter & van de Geijn's out-of-core
// QR, which is exactly TSQR with a flat tree). Memory use is O(N²) plus
// one buffered block, regardless of how many rows stream through, so the
// R factor (and with it least-squares normal data, Gram matrices, or
// condition estimates) of arbitrarily long datasets can be computed in
// one pass.
//
// Accumulator is not safe for concurrent use.
type Accumulator struct {
	n    int
	r    *matrix.Dense // current R, nil until the first N rows arrived
	buf  *matrix.Dense // pending rows (fewer than n so far)
	used int           // filled rows of buf
	rows int64         // total rows consumed
}

// NewAccumulator creates an accumulator for n-column row streams.
func NewAccumulator(n int) *Accumulator {
	if n < 1 {
		panic("core: accumulator needs at least one column")
	}
	return &Accumulator{n: n}
}

// Push folds a block of rows into the running factorization. The block
// may have any number of rows (including fewer than the column count);
// its contents are not modified.
func (a *Accumulator) Push(block *matrix.Dense) {
	if block.Cols != a.n {
		panic(fmt.Sprintf("core: accumulator push with %d columns, want %d", block.Cols, a.n))
	}
	a.rows += int64(block.Rows)
	rem := block
	for rem.Rows > 0 {
		if a.used > 0 || rem.Rows < a.n {
			// Fill the pending buffer first.
			if a.buf == nil {
				a.buf = matrix.New(2*a.n, a.n)
			}
			take := min(rem.Rows, 2*a.n-a.used)
			matrix.Copy(a.buf.View(a.used, 0, take, a.n), rem.View(0, 0, take, a.n))
			a.used += take
			rem = rem.View(take, 0, rem.Rows-take, a.n)
			if a.used == 2*a.n {
				a.fold(a.buf)
				a.used = 0
			}
			continue
		}
		// Large direct block: factor in one shot.
		a.fold(rem)
		rem = rem.View(rem.Rows, 0, 0, a.n)
	}
}

// fold absorbs a block (rows >= 1) into r via QR + stacked merge.
func (a *Accumulator) fold(block *matrix.Dense) {
	f := block.Clone()
	tau := make([]float64, min(f.Rows, a.n))
	lapack.Dgeqrf(f, tau, 0)
	rb := lapack.TriuCopy(f)
	if rb.Rows < a.n {
		// Fewer rows than columns: pad to a square triangle.
		sq := matrix.New(a.n, a.n)
		matrix.Copy(sq.View(0, 0, rb.Rows, a.n), rb)
		rb = sq
	} else {
		rb = rb.View(0, 0, a.n, a.n).Clone()
	}
	if a.r == nil {
		a.r = rb
		return
	}
	a.r, _, _ = lapack.StackQR(a.r, rb)
}

// R returns the current N×N upper triangular factor of everything pushed
// so far (flushing internal buffers), with nonnegative diagonal so
// results are unique. Rows pushed after calling R keep accumulating.
func (a *Accumulator) R() *matrix.Dense {
	if a.used > 0 {
		a.fold(a.buf.View(0, 0, a.used, a.n))
		a.used = 0
	}
	if a.r == nil {
		return matrix.New(a.n, a.n)
	}
	out := a.r.Clone()
	lapack.NormalizeRSigns(out, nil)
	return out
}

// Rows returns the total number of rows consumed.
func (a *Accumulator) Rows() int64 { return a.rows }
