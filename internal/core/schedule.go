package core

import "math/rand"

// merge is one edge of the reduction tree: domain src's R factor is sent
// to domain dst and folded in there. Merges are listed in a global order
// such that each domain's own merges appear in its correct local order;
// the index of a merge doubles as its message tag.
type merge struct {
	dst, src int // domain ids
}

// buildSchedule lays out the reduction tree over domains and returns the
// domain where the final R factor lands. When that is not domain 0, the
// caller transfers the result to world rank 0 with one extra message.
func buildSchedule(tree Tree, l *layout, seed int64) (ms []merge, root int) {
	switch tree {
	case TreeGrid:
		return gridSchedule(l), 0
	case TreeBinary:
		ids := make([]int, len(l.domains))
		for i := range ids {
			ids[i] = i
		}
		return binomialSchedule(ids), 0
	case TreeFlat:
		for i := 1; i < len(l.domains); i++ {
			ms = append(ms, merge{dst: 0, src: i})
		}
		return ms, 0
	case TreeBinaryShuffled:
		ids := make([]int, len(l.domains))
		for i := range ids {
			ids[i] = i
		}
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		return binomialSchedule(ids), ids[0]
	case TreeMultiLevel:
		return multiLevelSchedule(l)
	default:
		panic("core: unknown tree")
	}
}

// binomialSchedule reduces the listed domains onto ids[0] with a binomial
// tree: in round k (mask = 1<<k), the domain at list index i (i divisible
// by 2·mask) absorbs the one at i+mask. Rounds are emitted in order, so
// every participant sees its merges in dependency order.
func binomialSchedule(ids []int) []merge {
	var ms []merge
	n := len(ids)
	for mask := 1; mask < n; mask <<= 1 {
		for i := 0; i+mask < n; i += 2 * mask {
			ms = append(ms, merge{dst: ids[i], src: ids[i+mask]})
		}
	}
	return ms
}

// gridSchedule is the paper's tuned tree: a binomial reduction among each
// cluster's domains, then a binomial reduction among the cluster roots.
// Only the second stage crosses clusters: C−1 inter-cluster messages.
func gridSchedule(l *layout) []merge {
	var ms []merge
	var roots []int
	for _, ids := range l.perCluster {
		if len(ids) == 0 {
			continue
		}
		ms = append(ms, binomialSchedule(ids)...)
		roots = append(roots, ids[0])
	}
	ms = append(ms, binomialSchedule(roots)...)
	return ms
}

// groupBy splits an ordered domain-id list into consecutive runs with
// equal key, preserving order — the same run-grouping buildLayout applies
// to ranks, one hierarchy level up.
func groupBy(ids []int, key func(id int) int) [][]int {
	var groups [][]int
	last := 0
	for i, id := range ids {
		if i == 0 || key(id) != last {
			groups = append(groups, nil)
			last = key(id)
		}
		groups[len(groups)-1] = append(groups[len(groups)-1], id)
	}
	return groups
}

// multiLevelSchedule reduces along the full platform hierarchy, one
// binomial stage per level from the bottom up:
//
//	domains sharing a node → node roots within a cluster →
//	cluster roots within a continent → continent roots.
//
// Each stage's merges ride a strictly cheaper network class than the
// next, so the schedule pays exactly sites−continents inter-site and
// continents−1 inter-continental messages. Stages are emitted in order,
// which keeps every domain's incoming merges ahead of its single
// outgoing send (each binomial stage absorbs a domain at most once, and
// an absorbed domain never re-appears upstream).
func multiLevelSchedule(l *layout) (ms []merge, root int) {
	var clusterRoots []int
	for _, ids := range l.perCluster {
		if len(ids) == 0 {
			continue
		}
		// Stage 1: binomial among each node's domains, on shared memory.
		var nodeRoots []int
		for _, nodeIDs := range groupBy(ids, func(id int) int { return l.domains[id].node }) {
			ms = append(ms, binomialSchedule(nodeIDs)...)
			nodeRoots = append(nodeRoots, nodeIDs[0])
		}
		// Stage 2: binomial among the cluster's node roots, on the switch.
		ms = append(ms, binomialSchedule(nodeRoots)...)
		clusterRoots = append(clusterRoots, nodeRoots[0])
	}
	// Stage 3: binomial among cluster roots within each continent.
	var continentRoots []int
	for _, contIDs := range groupBy(clusterRoots, func(id int) int { return l.domains[id].continent }) {
		ms = append(ms, binomialSchedule(contIDs)...)
		continentRoots = append(continentRoots, contIDs[0])
	}
	// Stage 4: binomial among continent roots, over the widest links.
	ms = append(ms, binomialSchedule(continentRoots)...)
	return ms, continentRoots[0]
}
