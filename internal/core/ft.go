package core

import (
	"fmt"
	"sort"
	"strings"

	"gridqr/internal/flops"
	"gridqr/internal/lapack"
	"gridqr/internal/matrix"
	"gridqr/internal/mpi"
)

// Fault-tolerant TSQR. The R-factor reduction is an associative combine
// of upper triangles (Langou, arXiv:1002.4250: exactly an MPI_Reduce), so
// a dead rank can be routed around: the survivors re-form the binomial
// reduction tree over the live set and redo only the combine steps whose
// results were lost with the dead ranks — everything a survivor already
// computed is served from a local cache keyed by the set of leaf
// contributions it covers.
//
// Protocol. Rank 0 coordinates. Execution proceeds in epochs; in each
// epoch the live ranks run one deterministic reduction tree (binomial
// within each cluster, then across cluster roots — the paper's grid
// tree). A rank that observes a failure (typed RankFailedError from the
// transport, or a receive timeout) stops combining and propagates an
// abort report up the tree on the very tags its ancestors already await,
// so no rank ever blocks on a decision. After its own tree role completes
// the coordinator concludes the epoch with a control message to every
// epoch participant: DONE, CONTINUE with the grown dead set, or a typed
// abort (too many failures / unrecoverable data loss). Each non-terminal
// epoch strictly grows the dead set, so the protocol finishes within P
// epochs and never hangs.
//
// Data safety. Each rank replicates its leaf R to a buddy, rank
// (me+1) mod P, before the first epoch. When a rank dies, its buddy
// re-contributes the copy at the next epoch's leaf level. A dead rank
// whose buddy is also dead (or never received the copy) makes the input
// unrecoverable: the run aborts with FTDataLost.

// Reserved tag bases for the FT protocol; they sit far above the forward
// and backward TSQR tag spaces of tsqr.go.
const (
	ftLeafCopyTag = 1 << 26 // one-time buddy replication of the leaf R
	ftCtrlBase    = 1 << 27 // + epoch: coordinator's end-of-epoch control
	ftDataBase    = 1 << 28 // + epoch*ftMergeSpan + merge index: tree data
	ftMergeSpan   = 4096    // max merges per epoch (bounds P)
)

// Control statuses and tree payload codes.
const (
	ctrlDone = iota
	ctrlContinue
	ctrlTooMany
	ctrlDataLost
)
const (
	payloadData = iota
	payloadAbort
)

// FTReason classifies why fault-tolerant TSQR gave up.
type FTReason int

const (
	// FTTooManyFailures: more ranks died than Config.FT.MaxFailures.
	FTTooManyFailures FTReason = iota
	// FTDataLost: a dead rank's leaf data is unrecoverable (its buddy
	// replica is dead too, or the replica never arrived).
	FTDataLost
	// FTCoordinatorLost: rank 0, the recovery coordinator, died.
	FTCoordinatorLost
	// FTEvicted: this rank was declared dead by the coordinator (a
	// receive from it timed out) while actually alive; it withdraws.
	FTEvicted
	// FTInternal: the protocol failed to converge (a bug, not a fault).
	FTInternal
)

func (r FTReason) String() string {
	switch r {
	case FTTooManyFailures:
		return "too many failures"
	case FTDataLost:
		return "leaf data lost"
	case FTCoordinatorLost:
		return "coordinator lost"
	case FTEvicted:
		return "rank evicted"
	default:
		return "internal protocol error"
	}
}

// FTError is the typed abort of fault-tolerant TSQR: the factorization
// could not complete, and why.
type FTError struct {
	Reason FTReason
	Dead   []int // ranks reported dead when the run aborted
	Lost   []int // ranks whose leaf data is unrecoverable (FTDataLost)
}

func (e *FTError) Error() string {
	s := fmt.Sprintf("core: fault-tolerant TSQR aborted: %s", e.Reason)
	if len(e.Dead) > 0 {
		s += fmt.Sprintf(" (dead ranks %v)", e.Dead)
	}
	if len(e.Lost) > 0 {
		s += fmt.Sprintf(" (lost leaves %v)", e.Lost)
	}
	return s
}

// FTStats instruments a fault-tolerant run.
type FTStats struct {
	Epochs         int   // reduction attempts, 1 = fault-free
	Combines       int   // stacked-triangle QRs actually computed
	CombinesReused int   // combines served from the survivor cache
	Dead           []int // ranks reported dead over the run
}

// FTResult is the output of FactorizeFT.
type FTResult struct {
	// R is the N×N upper triangular factor, on world rank 0 only.
	R *matrix.Dense
	// Stats describes this rank's view of the recovery work.
	Stats FTStats
}

// ftState is one rank's mutable protocol state.
type ftState struct {
	comm  *mpi.Comm
	n     int
	p, me int
	leafR *matrix.Dense
	// buddyCopy is the predecessor's replicated leaf R (nil if it never
	// arrived).
	buddyCopy *matrix.Dense
	// cache maps a sorted contributor-id set to its combined R, so a
	// re-formed tree redoes only combines that were actually lost.
	cache map[string]*matrix.Dense
	stats FTStats
}

// FactorizeFT runs TSQR with failure recovery under the protocol above.
// It requires data mode and one domain per process. With cfg.FT.Enabled
// false it simply delegates to Factorize (no recovery, no overhead). On
// world rank 0 the result carries R; any abort is a typed *FTError, on
// every surviving rank.
func FactorizeFT(comm *mpi.Comm, in Input, cfg Config) (*FTResult, error) {
	if !cfg.FT.Enabled {
		res := Factorize(comm, in, cfg)
		return &FTResult{R: res.R, Stats: FTStats{Epochs: 1}}, nil
	}
	in.validate(comm)
	ctx := comm.Ctx()
	if !ctx.HasData() {
		panic("core: FactorizeFT requires data mode")
	}
	if cfg.DomainsPerCluster != 0 {
		panic("core: FactorizeFT requires one domain per process (DomainsPerCluster = 0)")
	}
	p, me := comm.Size(), comm.Rank()
	if p > ftMergeSpan {
		panic("core: FactorizeFT supports at most 4096 processes")
	}
	maxFail := cfg.FT.MaxFailures
	if maxFail <= 0 {
		maxFail = (p - 1) / 2
	}

	// Leaf factorization: same local kernel as Factorize's single-process
	// domains.
	myRows := in.Offsets[me+1] - in.Offsets[me]
	if cfg.Recursive {
		lapack.Dgeqr3(in.Local)
	} else {
		tau := make([]float64, in.N)
		lapack.Dgeqrf(in.Local, tau, cfg.NB)
	}
	leafR := lapack.TriuCopy(in.Local).View(0, 0, in.N, in.N).Clone()
	ctx.Charge(flops.GEQRF(myRows, in.N), in.N)

	st := &ftState{comm: comm, n: in.N, p: p, me: me, leafR: leafR,
		cache: map[string]*matrix.Dense{}}
	if p == 1 {
		st.stats.Epochs = 1
		return &FTResult{R: leafR, Stats: st.stats}, nil
	}

	// Buddy replication of the leaf R before any fault can strike the
	// reduction. A failed send or receive here is tolerated: the copy is
	// only needed if the predecessor later dies.
	_ = comm.TrySend((me+1)%p, packTriu(leafR), ftLeafCopyTag)
	if buf, err := comm.TryRecv((me+p-1)%p, ftLeafCopyTag); err == nil {
		st.buddyCopy = unpackTriu(buf, in.N)
	}

	clusterOf := comm.ClusterOf
	knownDead := map[int]bool{}
	for epoch := 0; epoch <= p; epoch++ {
		st.stats.Epochs = epoch + 1
		res, err, again := st.runEpoch(epoch, knownDead, maxFail, clusterOf)
		if !again {
			return res, err
		}
	}
	return nil, &FTError{Reason: FTInternal, Dead: sortedKeys(knownDead)}
}

// runEpoch executes one reduction attempt over the ranks not in
// knownDead. again=true means the coordinator ordered another epoch with
// a grown knownDead (updated in place).
func (st *ftState) runEpoch(epoch int, knownDead map[int]bool, maxFail int,
	clusterOf func(int) int) (res *FTResult, err error, again bool) {
	live := make([]int, 0, st.p)
	for r := 0; r < st.p; r++ {
		if !knownDead[r] {
			live = append(live, r)
		}
	}
	sched := ftSchedule(live, clusterOf)

	// Start from my leaf; if my predecessor is dead I act for it too,
	// re-contributing its replicated leaf.
	acc, set := st.leafR, []int{st.me}
	aborted := false
	newDead := map[int]bool{}
	lost := map[int]bool{}
	pred := (st.me + st.p - 1) % st.p
	if knownDead[pred] {
		if st.buddyCopy == nil {
			lost[pred] = true
			aborted = true
		} else {
			acc, set = st.combine(acc, set, st.buddyCopy, []int{pred})
		}
	}

	// Tree phase. Every rank completes its full role: failed or aborted
	// subtrees turn data messages into abort reports on the same tags, so
	// ancestors never block on a missing decision.
	for idx, m := range sched {
		tag := ftDataBase + epoch*ftMergeSpan + idx
		switch st.me {
		case m.dst:
			buf, rerr := st.comm.TryRecv(m.src, tag)
			if rerr != nil {
				newDead[m.src] = true
				aborted = true
				continue
			}
			switch int(buf[0]) {
			case payloadAbort:
				d, l := decodeAbort(buf)
				for _, r := range d {
					newDead[r] = true
				}
				for _, r := range l {
					lost[r] = true
				}
				aborted = true
			case payloadData:
				if aborted {
					continue // epoch already failed; drain and discard
				}
				otherSet, otherR := decodeData(buf, st.n)
				acc, set = st.combine(acc, set, otherR, otherSet)
			}
		case m.src:
			var payload []float64
			if aborted {
				payload = encodeAbort(newDead, lost)
			} else {
				payload = encodeData(set, acc)
			}
			// A failed send (every delivery attempt dropped) is left to
			// the receiver's timeout: it will evict us and recover.
			_ = st.comm.TrySend(m.dst, payload, tag)
		}
	}

	// Epoch conclusion. The coordinator decides; everyone else waits for
	// the decision.
	if st.me == 0 {
		for d := range newDead {
			knownDead[d] = true
		}
		deadList := sortedKeys(knownDead)
		st.stats.Dead = deadList
		status := ctrlContinue
		switch {
		case !aborted:
			status = ctrlDone
		case len(deadList) > maxFail:
			status = ctrlTooMany
		default:
			// A dead rank is recoverable only through its live buddy.
			for d := range knownDead {
				if knownDead[(d+1)%st.p] {
					lost[d] = true
				}
			}
			if len(lost) > 0 {
				status = ctrlDataLost
			}
		}
		lostList := sortedKeys(lost)
		ctrl := encodeCtrl(status, deadList, lostList)
		for _, r := range live {
			if r != 0 {
				_ = st.comm.TrySend(r, ctrl, ftCtrlBase+epoch)
			}
		}
		switch status {
		case ctrlDone:
			return &FTResult{R: acc, Stats: st.stats}, nil, false
		case ctrlTooMany:
			return nil, &FTError{Reason: FTTooManyFailures, Dead: deadList}, false
		case ctrlDataLost:
			return nil, &FTError{Reason: FTDataLost, Dead: deadList, Lost: lostList}, false
		}
		return nil, nil, true
	}

	buf, cerr := st.comm.TryRecv(0, ftCtrlBase+epoch)
	if cerr != nil {
		return nil, &FTError{Reason: FTCoordinatorLost, Dead: sortedKeys(knownDead)}, false
	}
	status, deadList, lostList := decodeCtrl(buf)
	st.stats.Dead = deadList
	switch status {
	case ctrlDone:
		return &FTResult{Stats: st.stats}, nil, false
	case ctrlTooMany:
		return nil, &FTError{Reason: FTTooManyFailures, Dead: deadList}, false
	case ctrlDataLost:
		return nil, &FTError{Reason: FTDataLost, Dead: deadList, Lost: lostList}, false
	}
	for _, d := range deadList {
		if d == st.me {
			// The coordinator evicted me (a receive from me timed out);
			// my leaf continues through my buddy. Withdraw cleanly.
			return nil, &FTError{Reason: FTEvicted, Dead: deadList}, false
		}
		knownDead[d] = true
	}
	return nil, nil, true
}

// combine merges another partial R (covering otherSet) into acc (covering
// set), serving repeated combines from the cache: after a failure only
// the combines lost with the dead ranks are recomputed.
func (st *ftState) combine(acc *matrix.Dense, set []int, other *matrix.Dense, otherSet []int) (*matrix.Dense, []int) {
	union := mergeSorted(set, otherSet)
	key := setKey(union)
	if r, ok := st.cache[key]; ok {
		st.stats.CombinesReused++
		return r, union
	}
	r, _, _ := lapack.StackQR(acc, other)
	st.comm.Ctx().Charge(flops.StackQR(st.n), st.n)
	st.stats.Combines++
	st.cache[key] = r
	return r, union
}

// ftMerge is one edge of an epoch's reduction tree: src's partial R is
// absorbed by dst.
type ftMerge struct{ dst, src int }

// ftSchedule builds the deterministic reduction tree over the live ranks:
// binomial within each cluster, then binomial across the cluster roots
// (the paper's grid-tuned shape, re-formed over survivors). The root is
// live[0] — rank 0 whenever the coordinator is alive.
func ftSchedule(live []int, clusterOf func(int) int) []ftMerge {
	groups := map[int][]int{}
	var order []int
	for _, r := range live {
		c := clusterOf(r)
		if _, ok := groups[c]; !ok {
			order = append(order, c)
		}
		groups[c] = append(groups[c], r)
	}
	sort.Ints(order)
	var merges []ftMerge
	roots := make([]int, 0, len(order))
	for _, c := range order {
		merges = append(merges, ftBinomial(groups[c])...)
		roots = append(roots, groups[c][0])
	}
	return append(merges, ftBinomial(roots)...)
}

// ftBinomial emits binomial-tree merges over a rank list, rooted at its
// first element.
func ftBinomial(list []int) []ftMerge {
	var out []ftMerge
	for gap := 1; gap < len(list); gap *= 2 {
		for i := 0; i+gap < len(list); i += 2 * gap {
			out = append(out, ftMerge{dst: list[i], src: list[i+gap]})
		}
	}
	return out
}

// Payload encodings. Tree messages: [code, ...]; data payloads carry the
// contributor set then the packed triangle, abort payloads the newly dead
// and unrecoverable rank lists. Control messages: [status, dead..., lost...].

func encodeData(set []int, r *matrix.Dense) []float64 {
	buf := make([]float64, 0, 2+len(set)+len(r.Data)/2)
	buf = append(buf, payloadData, float64(len(set)))
	for _, id := range set {
		buf = append(buf, float64(id))
	}
	return append(buf, packTriu(r)...)
}

func decodeData(buf []float64, n int) ([]int, *matrix.Dense) {
	k := int(buf[1])
	set := make([]int, k)
	for i := range set {
		set[i] = int(buf[2+i])
	}
	return set, unpackTriu(buf[2+k:], n)
}

func encodeAbort(dead, lost map[int]bool) []float64 {
	buf := []float64{payloadAbort, float64(len(dead))}
	for _, d := range sortedKeys(dead) {
		buf = append(buf, float64(d))
	}
	buf = append(buf, float64(len(lost)))
	for _, l := range sortedKeys(lost) {
		buf = append(buf, float64(l))
	}
	return buf
}

func decodeAbort(buf []float64) (dead, lost []int) {
	nd := int(buf[1])
	for i := 0; i < nd; i++ {
		dead = append(dead, int(buf[2+i]))
	}
	nl := int(buf[2+nd])
	for i := 0; i < nl; i++ {
		lost = append(lost, int(buf[3+nd+i]))
	}
	return dead, lost
}

func encodeCtrl(status int, dead, lost []int) []float64 {
	buf := []float64{float64(status), float64(len(dead))}
	for _, d := range dead {
		buf = append(buf, float64(d))
	}
	buf = append(buf, float64(len(lost)))
	for _, l := range lost {
		buf = append(buf, float64(l))
	}
	return buf
}

func decodeCtrl(buf []float64) (status int, dead, lost []int) {
	d, l := decodeAbort(append([]float64{0}, buf[1:]...))
	return int(buf[0]), d, l
}

func mergeSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

func setKey(set []int) string {
	var b strings.Builder
	for i, s := range set {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", s)
	}
	return b.String()
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
