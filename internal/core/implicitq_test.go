package core

import (
	"math"
	"sync"
	"testing"

	"gridqr/internal/grid"
	"gridqr/internal/matrix"
	"gridqr/internal/mpi"
	"gridqr/internal/scalapack"
)

// runImplicit factors a and exercises ApplyQT/ApplyQ inside one world
// run, returning what the probe function extracts on rank 0.
func runImplicit(t *testing.T, g *grid.Grid, a *matrix.Dense, tree Tree,
	probe func(comm *mpi.Comm, res *Result) any) any {
	t.Helper()
	m, n := a.Rows, a.Cols
	offsets := scalapack.BlockOffsets(m, g.Procs())
	w := mpi.NewWorld(g)
	var mu sync.Mutex
	var out any
	w.Run(func(ctx *mpi.Ctx) {
		comm := mpi.WorldComm(ctx)
		in := Input{M: m, N: n, Offsets: offsets, Local: scalapack.Distribute(a, offsets, ctx.Rank())}
		res := Factorize(comm, in, Config{Tree: tree, KeepFactors: true, ShuffleSeed: 5})
		v := probe(comm, res)
		if ctx.Rank() == 0 {
			mu.Lock()
			out = v
			mu.Unlock()
		}
	})
	return out
}

func TestImplicitQTRecoversRviaA(t *testing.T) {
	// Qᵀ·A = [R; 0]: applying QT to the ORIGINAL matrix must give R on
	// top and zero rest.
	g := grid.SmallTestGrid(2, 2, 1)
	m, n := 120, 5
	a := matrix.Random(m, n, 71)
	offsets := scalapack.BlockOffsets(m, g.Procs())
	type pair struct {
		top  *matrix.Dense
		rest []float64
		r    *matrix.Dense
	}
	got := runImplicit(t, g, a, TreeGrid, func(comm *mpi.Comm, res *Result) any {
		bl := scalapack.Distribute(a, offsets, comm.Rank())
		top, rest := res.Q.ApplyQT(comm, bl)
		return pair{top, rest, res.R}
	}).(pair)
	if !matrix.Equal(got.top, got.r, 1e-10) {
		t.Fatal("QᵀA top block != R")
	}
	for j, s := range got.rest {
		if s > 1e-18 {
			t.Fatalf("QᵀA rest norm² %g nonzero (col %d)", s, j)
		}
	}
}

func TestImplicitRoundTrip(t *testing.T) {
	// Q·(Qᵀ·b) must equal the projection of b onto range(A); for
	// b ∈ range(A), that is b itself.
	g := grid.SmallTestGrid(2, 2, 1)
	m, n := 96, 4
	a := matrix.Random(m, n, 72)
	coeff := matrix.Random(n, 2, 73)
	b := matrix.New(m, 2)
	for i := 0; i < m; i++ {
		for c := 0; c < 2; c++ {
			var s float64
			for j := 0; j < n; j++ {
				s += a.At(i, j) * coeff.At(j, c)
			}
			b.Set(i, c, s)
		}
	}
	offsets := scalapack.BlockOffsets(m, g.Procs())
	diff := runImplicit(t, g, a, TreeGrid, func(comm *mpi.Comm, res *Result) any {
		bl := scalapack.Distribute(b, offsets, comm.Rank())
		top, _ := res.Q.ApplyQT(comm, bl)
		back := res.Q.ApplyQ(comm, top)
		full := scalapack.Collect(comm, back, offsets, 2)
		if comm.Rank() != 0 {
			return nil
		}
		worst := 0.0
		for i := 0; i < m; i++ {
			for c := 0; c < 2; c++ {
				if d := math.Abs(full.At(i, c) - b.At(i, c)); d > worst {
					worst = d
				}
			}
		}
		return worst
	}).(float64)
	if diff > 1e-11 {
		t.Fatalf("Q·Qᵀ·b differs from b by %g for b in range(A)", diff)
	}
}

func TestImplicitMatchesExplicitQ(t *testing.T) {
	// ApplyQ(e_j) columns must reproduce the explicit Q.
	g := grid.SmallTestGrid(2, 2, 1)
	m, n := 64, 4
	a := matrix.Random(m, n, 74)
	offsets := scalapack.BlockOffsets(m, g.Procs())
	w := mpi.NewWorld(g)
	var mu sync.Mutex
	var qImp, qExp *matrix.Dense
	w.Run(func(ctx *mpi.Ctx) {
		comm := mpi.WorldComm(ctx)
		in := Input{M: m, N: n, Offsets: offsets, Local: scalapack.Distribute(a, offsets, ctx.Rank())}
		res := Factorize(comm, in, Config{Tree: TreeGrid, WantQ: true, KeepFactors: true})
		var eye *matrix.Dense
		if ctx.Rank() == 0 {
			eye = matrix.Eye(n)
		}
		impLocal := res.Q.ApplyQ(comm, eye)
		imp := scalapack.Collect(comm, impLocal, offsets, n)
		exp := scalapack.Collect(comm, res.QLocal, offsets, n)
		if ctx.Rank() == 0 {
			mu.Lock()
			qImp, qExp = imp, exp
			mu.Unlock()
		}
	})
	if !matrix.Equal(qImp, qExp, 1e-11) {
		t.Fatal("implicit Q(I) differs from explicit Q")
	}
}

func TestImplicitQTShuffledTree(t *testing.T) {
	// The root-relocation path: shuffled tree whose root is not rank 0.
	g := grid.SmallTestGrid(2, 2, 1)
	m, n := 80, 4
	a := matrix.Random(m, n, 75)
	offsets := scalapack.BlockOffsets(m, g.Procs())
	type pair struct {
		top *matrix.Dense
		r   *matrix.Dense
	}
	got := runImplicit(t, g, a, TreeBinaryShuffled, func(comm *mpi.Comm, res *Result) any {
		bl := scalapack.Distribute(a, offsets, comm.Rank())
		top, _ := res.Q.ApplyQT(comm, bl)
		return pair{top, res.R}
	}).(pair)
	if got.top == nil || got.r == nil {
		t.Fatal("missing results on rank 0")
	}
	if !matrix.Equal(got.top, got.r, 1e-10) {
		t.Fatal("shuffled-tree QᵀA top != R")
	}
}

func TestImplicitRepeatedApplies(t *testing.T) {
	// Several applies through the same handle must not cross-talk
	// (per-apply tag ranges).
	g := grid.SmallTestGrid(1, 4, 1)
	m, n := 64, 3
	a := matrix.Random(m, n, 76)
	offsets := scalapack.BlockOffsets(m, g.Procs())
	ok := runImplicit(t, g, a, TreeBinary, func(comm *mpi.Comm, res *Result) any {
		for trial := 0; trial < 3; trial++ {
			bl := scalapack.Distribute(a, offsets, comm.Rank())
			top, _ := res.Q.ApplyQT(comm, bl)
			if comm.Rank() == 0 && !matrix.Equal(top, res.R, 1e-10) {
				return false
			}
		}
		return true
	}).(bool)
	if !ok {
		t.Fatal("repeated applies diverged")
	}
}

func TestKeepFactorsRejectsMultiProcDomains(t *testing.T) {
	g := grid.SmallTestGrid(1, 4, 1)
	offsets := scalapack.BlockOffsets(64, 4)
	w := mpi.NewWorld(g)
	a := matrix.Random(64, 4, 77)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.Run(func(ctx *mpi.Ctx) {
		in := Input{M: 64, N: 4, Offsets: offsets, Local: scalapack.Distribute(a, offsets, ctx.Rank())}
		Factorize(mpi.WorldComm(ctx), in, Config{DomainsPerCluster: 2, KeepFactors: true})
	})
}
