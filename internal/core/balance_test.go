package core

import (
	"testing"

	"gridqr/internal/grid"
	"gridqr/internal/lapack"
	"gridqr/internal/matrix"
	"gridqr/internal/mpi"
	"gridqr/internal/scalapack"
	"sync"
)

// heteroGrid returns a 2-cluster grid where cluster B's processors are
// three times faster than cluster A's.
func heteroGrid() *grid.Grid {
	g := grid.SmallTestGrid(2, 2, 1)
	g.Clusters[1].Gflops = 3 * g.Clusters[0].Gflops
	return g
}

func TestBalanceRowsTotalsAndFloor(t *testing.T) {
	g := heteroGrid()
	m, n := 10_000, 16
	off := BalanceRows(g, m, n)
	if off[0] != 0 || off[len(off)-1] != m {
		t.Fatalf("offsets do not cover the matrix: %v", off)
	}
	for r := 0; r < g.Procs(); r++ {
		if off[r+1]-off[r] < n {
			t.Fatalf("rank %d got %d rows < N", r, off[r+1]-off[r])
		}
	}
}

func TestBalanceRowsProportional(t *testing.T) {
	g := heteroGrid()
	m, n := 40_000, 16
	off := BalanceRows(g, m, n)
	slow := off[1] - off[0] // rank 0 on the slow cluster
	fast := off[3] - off[2] // rank 2 on the fast cluster
	ratio := float64(fast) / float64(slow)
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("fast/slow row ratio = %g want ≈3", ratio)
	}
}

func TestBalanceRowsUniformGrid(t *testing.T) {
	g := grid.SmallTestGrid(2, 2, 1)
	off := BalanceRows(g, 1000, 8)
	want := scalapack.BlockOffsets(1000, 4)
	for i := range want {
		if off[i] != want[i] {
			t.Fatalf("uniform grid: %v want %v", off, want)
		}
	}
}

func TestBalanceRowsPanicsWhenTooShort(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BalanceRows(heteroGrid(), 10, 16)
}

func TestBalancedTSQRFasterOnHeterogeneousGrid(t *testing.T) {
	// The point of the extension: balanced row counts beat uniform ones
	// in simulated time on a heterogeneous platform.
	g := heteroGrid()
	m, n := 1<<20, 32
	run := func(offsets []int) float64 {
		w := mpi.NewWorld(g, mpi.CostOnly())
		w.Run(func(ctx *mpi.Ctx) {
			Factorize(mpi.WorldComm(ctx), Input{M: m, N: n, Offsets: offsets},
				Config{Tree: TreeGrid})
		})
		return w.MaxClock()
	}
	uniform := run(scalapack.BlockOffsets(m, g.Procs()))
	balanced := run(BalanceRows(g, m, n))
	if balanced >= uniform {
		t.Fatalf("balanced (%g s) not faster than uniform (%g s)", balanced, uniform)
	}
	// With a 3:1 rate split the uniform run is dominated by the slow
	// half; balancing should recover most of the gap (ideal = 0.5).
	if balanced/uniform > 0.75 {
		t.Fatalf("balanced/uniform = %g, expected a substantial win", balanced/uniform)
	}
}

func TestBalancedTSQRNumericallyCorrect(t *testing.T) {
	g := heteroGrid()
	m, n := 4000, 8
	global := matrix.Random(m, n, 9)
	offsets := BalanceRows(g, m, n)
	w := mpi.NewWorld(g)
	var mu sync.Mutex
	var r *matrix.Dense
	w.Run(func(ctx *mpi.Ctx) {
		comm := mpi.WorldComm(ctx)
		in := Input{M: m, N: n, Offsets: offsets, Local: scalapack.Distribute(global, offsets, ctx.Rank())}
		res := Factorize(comm, in, Config{Tree: TreeGrid})
		if ctx.Rank() == 0 {
			mu.Lock()
			r = res.R
			mu.Unlock()
		}
	})
	lapack.NormalizeRSigns(r, nil)
	if !matrix.Equal(r, refR(global), 1e-10) {
		t.Fatal("balanced TSQR R differs from sequential")
	}
}
