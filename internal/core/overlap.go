package core

import (
	"gridqr/internal/flops"
	"gridqr/internal/lapack"
	"gridqr/internal/matrix"
	"gridqr/internal/mpi"
)

// Overlapped TSQR: the same reduction — every domain's R absorbed exactly
// once, C−1 inter-cluster messages for C sites — but restructured so the
// expensive cross-site transfers are in flight *while* the receiving
// leader runs its stacked-triangle QR merges, instead of each transfer
// serializing behind the previous merge.
//
// Two changes compose:
//
//  1. The cross-site stage of the grid tree goes flat: every cluster root
//     sends its fully reduced triangle directly to the global root. A
//     binomial stage would also need C−1 inter-site messages but chains
//     them — each round's transfer cannot start before the previous
//     round's merge finished on some intermediate root. Flat, all C−1
//     triangles leave as soon as their clusters finish, so their
//     (latency-dominated) flights run concurrently.
//  2. The receiving leader posts every incoming receive up front (Irecv)
//     and completes them in schedule order: while it merges triangle i,
//     triangles i+1, i+2, … are still on the wire — the double-buffered
//     reduction, expressed with the nonblocking runtime the way a real
//     MPI implementation would need to express it.
//
// Message and flop counts are untouched: any reduction over d domains
// performs exactly d−1 merges of one packed triangle each, so
// perfmodel.TSQRExactTotals and TSQRExactCrossSite hold for the
// overlapped variant bit for bit.

// overlapSchedule is gridSchedule with a flat cross-site stage: binomial
// reduction among each cluster's domains, then every cluster root sends
// straight to the first cluster's root.
func overlapSchedule(l *layout) (ms []merge, root int) {
	var roots []int
	for _, ids := range l.perCluster {
		if len(ids) == 0 {
			continue
		}
		ms = append(ms, binomialSchedule(ids)...)
		roots = append(roots, ids[0])
	}
	for i := 1; i < len(roots); i++ {
		ms = append(ms, merge{dst: roots[0], src: roots[i]})
	}
	return ms, roots[0]
}

// combineOverlap is the leader's forward pass over its slice of the
// schedule using the nonblocking runtime: all incoming transfers are
// posted before the first merge, then completed in schedule order so each
// stacked-triangle QR overlaps the later transfers still in flight. Valid
// for every schedule this package builds, because each leader's incoming
// merges all precede its single outgoing send in schedule order. The
// merge log, tags and the outgoing destination are identical to the
// blocking pass, so the backward Q-construction pass needs no variant.
func combineOverlap(comm *mpi.Comm, in Input, l *layout, dom domain,
	merges []domMerge, r *matrix.Dense) (*matrix.Dense, []mergeRec, int, int) {
	ctx := comm.Ctx()
	type pending struct {
		src, tag int
		req      *mpi.Request
	}
	var incoming []pending
	sentTo, sentTag := -1, -1
	for _, dm := range merges {
		if dm.m.dst == dom.id {
			incoming = append(incoming, pending{src: l.domains[dm.m.src].leader(), tag: dm.tag})
		} else {
			sentTo, sentTag = l.domains[dm.m.dst].leader(), dm.tag
			break // my R will be absorbed there; nothing arrives after
		}
	}
	for i := range incoming {
		incoming[i].req = comm.Irecv(incoming[i].src, rTagBase+incoming[i].tag)
	}
	var log []mergeRec
	for _, p := range incoming {
		buf := p.req.MustWait()
		rec := mergeRec{partner: p.src, tag: p.tag}
		if ctx.HasData() {
			r, rec.v, rec.tau = lapack.StackQR(r, unpackTriu(buf, in.N))
		}
		ctx.ChargeKernel("stack_qr", flops.StackQR(in.N), in.N)
		log = append(log, rec)
	}
	if sentTag >= 0 {
		if ctx.HasData() {
			comm.Isend(sentTo, packTriu(r), rTagBase+sentTag).MustWait()
		} else {
			comm.IsendBytes(sentTo, triuBytes(in.N), rTagBase+sentTag).MustWait()
		}
	}
	return r, log, sentTo, sentTag
}
