package core

import (
	"gridqr/internal/blas"
	"gridqr/internal/flops"
	"gridqr/internal/lapack"
	"gridqr/internal/matrix"
	"gridqr/internal/mpi"
)

// CholeskyQR is the communication-minimal but numerically fragile
// orthogonalization scheme the paper's Section II-E alludes to ("currently
// these packages rely on unstable orthogonalization schemes to avoid too
// many communications"): the Gram matrix G = AᵀA is assembled with a
// single allreduce, R is its Cholesky factor, and Q = A·R⁻¹.
//
// One allreduce per factorization — even fewer messages than TSQR — but
// the loss of orthogonality grows with the square of A's condition
// number, and the factorization fails outright (Gram matrix numerically
// indefinite) once cond(A) approaches 1/√ε. TSQR delivers the same
// asymptotic message count with unconditional Householder stability,
// which is precisely the paper's argument.

// CholQRResult holds the outcome.
type CholQRResult struct {
	// OK reports whether the Cholesky factorization succeeded; false
	// means the Gram matrix was numerically indefinite (A too
	// ill-conditioned for this scheme).
	OK bool
	// R is the N×N upper triangular factor, replicated on every rank
	// (nil in cost-only mode).
	R *matrix.Dense
	// QLocal is this rank's row block of Q (nil in cost-only mode or on
	// failure).
	QLocal *matrix.Dense
}

// CholeskyQR orthogonalizes the distributed matrix with the Gram-matrix
// scheme. Input.Local is not modified.
func CholeskyQR(comm *mpi.Comm, in Input) *CholQRResult {
	in.validate(comm)
	ctx := comm.Ctx()
	n := in.N
	myRows := in.Offsets[comm.Rank()+1] - in.Offsets[comm.Rank()]
	res := &CholQRResult{}

	// --- Single allreduce: G = Σ_p A_pᵀ A_p ---
	gram := make([]float64, n*n)
	if ctx.HasData() {
		g := matrix.FromColMajor(n, n, gram)
		blas.Dsyrk(blas.Trans, 1, in.Local, 0, g)
		for c := 0; c < n; c++ { // mirror for the allreduce
			for r := c + 1; r < n; r++ {
				g.Set(r, c, g.At(c, r))
			}
		}
	}
	ctx.Charge(float64(myRows)*float64(n)*float64(n), n)
	gram = comm.Allreduce(gram, mpi.OpSum)

	// --- Replicated Cholesky; failure is detected identically everywhere ---
	if ctx.HasData() {
		g := matrix.FromColMajor(n, n, gram)
		r := matrix.New(n, n)
		lapack.Dlacpy(lapack.CopyUpper, g, r)
		if !lapack.Dpotrf(r) {
			return res // OK stays false
		}
		// Zero the untouched strictly-lower part for a clean R.
		for j := 0; j < n; j++ {
			for i := j + 1; i < n; i++ {
				r.Set(i, j, 0)
			}
		}
		res.OK = true
		res.R = r
		// Q = A·R⁻¹, block-local.
		res.QLocal = in.Local.Clone()
		blas.Dtrsm(blas.Right, blas.NoTrans, false, 1, r, res.QLocal)
	} else {
		res.OK = true
	}
	ctx.Charge(flops.GEQRF(n, n)/4+float64(myRows)*float64(n)*float64(n), n)
	return res
}
