package core

import (
	"math"
	"sync"
	"testing"

	"gridqr/internal/grid"
	"gridqr/internal/lapack"
	"gridqr/internal/matrix"
	"gridqr/internal/mpi"
	"gridqr/internal/scalapack"
	"gridqr/internal/telemetry"
)

func TestTSQROverlapCorrectness(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *grid.Grid
		cfg  Config
	}{
		{"per-proc-domains", grid.SmallTestGrid(4, 2, 1), Config{Tree: TreeGrid, Overlap: true}},
		{"two-sites", grid.SmallTestGrid(2, 2, 2), Config{Tree: TreeGrid, Overlap: true}},
		{"domains-per-cluster", grid.SmallTestGrid(2, 4, 2), Config{DomainsPerCluster: 2, Tree: TreeGrid, Overlap: true}},
		{"scalapack-leaves", grid.SmallTestGrid(2, 2, 2), Config{DomainsPerCluster: 1, Tree: TreeGrid, Overlap: true}},
		{"binary-tree", grid.SmallTestGrid(2, 2, 2), Config{Tree: TreeBinary, Overlap: true}},
		{"flat-tree", grid.SmallTestGrid(2, 2, 2), Config{Tree: TreeFlat, Overlap: true}},
		{"single-site", grid.SmallTestGrid(1, 4, 1), Config{Tree: TreeGrid, Overlap: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m, n := 128, 7
			r, _, _, global := runTSQR(t, tc.g, m, n, tc.cfg, 17)
			if !matrix.Equal(r, refR(global), 1e-10) {
				t.Fatal("overlapped TSQR R differs from sequential")
			}
			tol := 100 * 2.220446049250313e-16 * math.Sqrt(float64(m*n))
			q := qFromR(global, r)
			if res := matrix.ResidualQR(global, q, r); res > tol {
				t.Errorf("‖A−QR‖/‖A‖ = %.3e > %.3e", res, tol)
			}
		})
	}
}

func TestTSQROverlapWithQ(t *testing.T) {
	// The backward Q pass reuses the blocking path unmodified; it must
	// compose with the overlapped forward pass and its flat cross-site
	// schedule.
	g := grid.SmallTestGrid(3, 2, 1)
	m, n := 96, 6
	r, q, _, global := runTSQR(t, g, m, n, Config{Tree: TreeGrid, Overlap: true, WantQ: true}, 23)
	if q == nil {
		t.Fatal("no Q returned")
	}
	if e := matrix.OrthoError(q); e > 1e-11*float64(m) {
		t.Fatalf("Q orthogonality error %g", e)
	}
	if res := matrix.ResidualQR(global, q, r); res > 1e-11*float64(m) {
		t.Fatalf("QR residual %g", res)
	}
}

// TestTSQROverlapExactCounts: the overlapped variant must move exactly the
// same traffic as the blocking grid tree — d−1 packed triangles in total,
// C−1 of them inter-site (the formulas behind perfmodel.TSQRExactTotals).
func TestTSQROverlapExactCounts(t *testing.T) {
	const m, n = 1 << 14, 16
	for _, tc := range []struct{ sites, nodes int }{
		{2, 4}, {4, 2}, {3, 3},
	} {
		g := grid.SmallTestGrid(tc.sites, tc.nodes, 1)
		run := func(overlap bool) mpi.CounterSnapshot {
			w := mpi.NewWorld(g, mpi.CostOnly())
			w.Run(func(ctx *mpi.Ctx) {
				Factorize(mpi.WorldComm(ctx),
					Input{M: m, N: n, Offsets: scalapack.BlockOffsets(m, g.Procs())},
					Config{Tree: TreeGrid, Overlap: overlap})
			})
			return w.Counters()
		}
		blocking, overlapped := run(false), run(true)
		bt, ot := blocking.Total(), overlapped.Total()
		if bt.Msgs != ot.Msgs || bt.Bytes != ot.Bytes {
			t.Errorf("%d×%d: totals differ: blocking %+v, overlap %+v", tc.sites, tc.nodes, bt, ot)
		}
		bi, oi := blocking.Inter(), overlapped.Inter()
		if bi.Msgs != oi.Msgs || oi.Msgs != int64(tc.sites-1) {
			t.Errorf("%d×%d: inter-site msgs: blocking %d, overlap %d, want %d",
				tc.sites, tc.nodes, bi.Msgs, oi.Msgs, tc.sites-1)
		}
		// Flop totals to float-accumulation tolerance: the per-rank counters
		// are summed in goroutine completion order.
		if math.Abs(blocking.Flops-overlapped.Flops) > 1e-9*blocking.Flops {
			t.Errorf("%d×%d: flops differ: %g vs %g", tc.sites, tc.nodes, blocking.Flops, overlapped.Flops)
		}
	}
}

// TestTSQROverlapReducesInterSiteWait is the tentpole claim measured: on
// a multi-site grid the overlapped variant must finish earlier and carry
// strictly less inter-site wait on the telemetry critical path than the
// blocking grid tree, with the decomposition still summing exactly.
func TestTSQROverlapReducesInterSiteWait(t *testing.T) {
	const m, n = 1 << 18, 64
	g := grid.SmallTestGrid(4, 2, 1)
	run := func(overlap bool) (telemetry.CriticalPath, float64) {
		w := mpi.NewWorld(g, mpi.CostOnly(), mpi.Traced())
		w.Run(func(ctx *mpi.Ctx) {
			Factorize(mpi.WorldComm(ctx),
				Input{M: m, N: n, Offsets: scalapack.BlockOffsets(m, g.Procs())},
				Config{Tree: TreeGrid, Overlap: overlap})
		})
		return telemetry.AnalyzeCriticalPath(w.Trace()), w.MaxClock()
	}
	blocking, blockClock := run(false)
	overlapped, overClock := run(true)
	if blocking.InterSite <= 0 {
		t.Fatal("blocking run has no inter-site time on the critical path")
	}
	if overlapped.InterSite >= blocking.InterSite {
		t.Errorf("inter-site wait on critical path: overlap %.6fs not below blocking %.6fs",
			overlapped.InterSite, blocking.InterSite)
	}
	if overClock >= blockClock {
		t.Errorf("makespan: overlap %.6fs not below blocking %.6fs", overClock, blockClock)
	}
	for _, cp := range []telemetry.CriticalPath{blocking, overlapped} {
		if math.Abs(cp.Sum()-cp.Total) > 1e-9*(1+cp.Total) {
			t.Errorf("critical-path decomposition sum %g != total %g", cp.Sum(), cp.Total)
		}
	}
	t.Logf("inter-site wait: blocking %.6fs, overlapped %.6fs (makespan %.6fs -> %.6fs)",
		blocking.InterSite, overlapped.InterSite, blockClock, overClock)
}

// TestTSQROverlapUnderDelayFaults: fault-injected link delays must not
// perturb the overlapped reduction's numerics — the result stays within
// the backward-error bound, and the injected delays are visible in the
// virtual makespan.
func TestTSQROverlapUnderDelayFaults(t *testing.T) {
	g := grid.SmallTestGrid(2, 2, 1)
	m, n := 96, 6
	global := matrix.Random(m, n, 31)
	offsets := scalapack.BlockOffsets(m, g.Procs())
	plan := mpi.NewFaultPlan(7).Delay(mpi.AnyRank, mpi.AnyRank, mpi.AnyTag, 0.5, 2e-3, 0)
	w := mpi.NewWorld(g, mpi.WithFaults(plan))
	var mu sync.Mutex
	var r *matrix.Dense
	w.Run(func(ctx *mpi.Ctx) {
		comm := mpi.WorldComm(ctx)
		res := Factorize(comm, Input{M: m, N: n, Offsets: offsets,
			Local: scalapack.Distribute(global, offsets, ctx.Rank())},
			Config{Tree: TreeGrid, Overlap: true})
		if ctx.Rank() == 0 {
			mu.Lock()
			r = res.R
			mu.Unlock()
		}
	})
	lapack.NormalizeRSigns(r, nil)
	tol := 100 * 2.220446049250313e-16 * math.Sqrt(float64(m*n))
	q := qFromR(global, r)
	if res := matrix.ResidualQR(global, q, r); res > tol {
		t.Errorf("‖A−QR‖/‖A‖ = %.3e > %.3e under delay faults", res, tol)
	}
	if fc := w.FaultCounts(); fc.Delays == 0 {
		t.Error("delay plan injected nothing; the test is vacuous")
	}
}
