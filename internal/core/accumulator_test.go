package core

import (
	"testing"

	"gridqr/internal/matrix"
)

func TestAccumulatorMatchesFullQR(t *testing.T) {
	m, n := 300, 6
	global := matrix.Random(m, n, 61)
	acc := NewAccumulator(n)
	// Push in uneven chunks.
	for _, chunk := range []int{50, 1, 7, 100, 42, 100} {
		acc.Push(global.View(int(acc.Rows()), 0, chunk, n))
	}
	if acc.Rows() != int64(m) {
		t.Fatalf("rows = %d", acc.Rows())
	}
	r := acc.R()
	if !matrix.Equal(r, refR(global), 1e-10) {
		t.Fatal("streamed R differs from full QR")
	}
}

func TestAccumulatorTinyChunks(t *testing.T) {
	// Row-at-a-time streaming, rows < columns throughout.
	m, n := 40, 8
	global := matrix.Random(m, n, 62)
	acc := NewAccumulator(n)
	for i := 0; i < m; i++ {
		acc.Push(global.View(i, 0, 1, n))
	}
	if !matrix.Equal(acc.R(), refR(global), 1e-10) {
		t.Fatal("row-at-a-time R differs from full QR")
	}
}

func TestAccumulatorChunkOrderInvariance(t *testing.T) {
	// R is invariant (after sign normalization) to how the stream is cut.
	m, n := 128, 5
	global := matrix.Random(m, n, 63)
	cuts := [][]int{{128}, {64, 64}, {1, 127}, {13, 50, 65}, {3, 3, 3, 119}}
	var ref *matrix.Dense
	for _, cut := range cuts {
		acc := NewAccumulator(n)
		off := 0
		for _, c := range cut {
			acc.Push(global.View(off, 0, c, n))
			off += c
		}
		r := acc.R()
		if ref == nil {
			ref = r
			continue
		}
		if !matrix.Equal(r, ref, 1e-10) {
			t.Fatalf("cut %v changed R", cut)
		}
	}
}

func TestAccumulatorIncrementalQueries(t *testing.T) {
	// R() mid-stream must reflect exactly the rows seen so far, and
	// accumulation must continue correctly afterwards.
	m, n := 90, 4
	global := matrix.Random(m, n, 64)
	acc := NewAccumulator(n)
	acc.Push(global.View(0, 0, 30, n))
	r30 := acc.R()
	want30 := refR(global.View(0, 0, 30, n).Clone())
	if !matrix.Equal(r30, want30, 1e-10) {
		t.Fatal("mid-stream R wrong")
	}
	acc.Push(global.View(30, 0, 60, n))
	if !matrix.Equal(acc.R(), refR(global), 1e-10) {
		t.Fatal("post-query accumulation wrong")
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	acc := NewAccumulator(3)
	r := acc.R()
	if r.Rows != 3 || matrix.NormFrob(r) != 0 {
		t.Fatal("empty accumulator must return a zero triangle")
	}
}

func TestAccumulatorDoesNotModifyInput(t *testing.T) {
	n := 4
	block := matrix.Random(10, n, 65)
	orig := block.Clone()
	acc := NewAccumulator(n)
	acc.Push(block)
	if !matrix.Equal(block, orig, 0) {
		t.Fatal("Push modified its input")
	}
}

func TestAccumulatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAccumulator(0)
}

func TestAccumulatorWrongWidthPanics(t *testing.T) {
	acc := NewAccumulator(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	acc.Push(matrix.New(5, 4))
}

func TestAccumulatorNormInvariant(t *testing.T) {
	// ‖R‖_F == ‖A‖_F streamed in chunks (orthogonal invariance).
	m, n := 256, 7
	global := matrix.Random(m, n, 66)
	acc := NewAccumulator(n)
	for off := 0; off < m; off += 32 {
		acc.Push(global.View(off, 0, 32, n))
	}
	na, nr := matrix.NormFrob(global), matrix.NormFrob(acc.R())
	if d := (na - nr) / na; d > 1e-12 || d < -1e-12 {
		t.Fatalf("norms differ: %g vs %g", na, nr)
	}
}
