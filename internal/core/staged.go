package core

import (
	"fmt"
	"sync"

	"gridqr/internal/flops"
	"gridqr/internal/lapack"
	"gridqr/internal/matrix"
	"gridqr/internal/mpi"
)

// Staged TSQR: the same reduction as Factorize, executed stage by stage
// so the run can stop cleanly at any tree-stage boundary. Every merge of
// the schedule is assigned a stage by dependency leveling, and before a
// rank performs any stage-s work it consults a PreemptGate shared by the
// whole partition. When the gate says stop, every merge below the cut
// has run on both sides and no merge at or above it has started — the
// surviving R factors are a complete, tiny checkpoint (the paper's
// observation that TSQR's intermediate R factors are the whole state of
// the reduction). ResumeStaged replays the remaining merges of the
// original schedule on any same-size communicator, reproducing the
// uninterrupted run bit for bit: the fold order, the StackQR inputs and
// the packed triangles are identical.

// PreemptGate coordinates a preemption request across the ranks of one
// staged execution. Ranks reach stage boundaries at different times and
// must agree — without communication — on a single cut stage; the gate
// latches one decision per stage at first query and keeps the decided
// set upward-closed, so both sides of every merge see the same verdict.
type PreemptGate struct {
	mu        sync.Mutex
	requested bool
	decisions map[int]bool
}

// NewPreemptGate returns a gate with no pending request.
func NewPreemptGate() *PreemptGate {
	return &PreemptGate{decisions: make(map[int]bool)}
}

// Request asks the execution to stop at the next tree-stage boundary no
// rank has passed yet. Safe to call at any time, from any goroutine.
func (g *PreemptGate) Request() {
	g.mu.Lock()
	g.requested = true
	g.mu.Unlock()
}

// RequestAt arranges for the run to stop exactly at stage s: stages
// below s proceed even if they have not been queried yet. Tests use it
// to pin the cut deterministically.
func (g *PreemptGate) RequestAt(s int) {
	g.mu.Lock()
	g.requested = true
	for s2 := 1; s2 < s; s2++ {
		if _, ok := g.decisions[s2]; !ok {
			g.decisions[s2] = false
		}
	}
	g.mu.Unlock()
}

// shouldStop latches and returns the decision for one stage. Invariant:
// the set {s : decision(s)} is upward-closed, so a merge is skipped iff
// its stage is at or above the lowest stopped stage. The two closure
// rules below can never both fire — that would need a latched stop below
// a latched go, which the rules themselves make impossible.
func (g *PreemptGate) shouldStop(stage int) bool {
	if g == nil {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if d, ok := g.decisions[stage]; ok {
		return d
	}
	stop := g.requested
	for s, d := range g.decisions {
		if d && s < stage {
			stop = true
		}
		if !d && s > stage {
			stop = false
		}
	}
	g.decisions[stage] = stop
	return stop
}

// CkptMerge is one schedule entry of a checkpointed run: the original
// merge with its dependency stage and message tag, so a resume replays
// the original tree — same fold order, same tags — wherever it lands.
type CkptMerge struct {
	Dst, Src   int
	Stage, Tag int
}

// RankCheckpoint is the fragment one rank contributes when a staged run
// stops: its domain's current R factor (packed upper triangle) plus the
// schedule metadata, carried redundantly so any fragment can seed the
// assembled checkpoint. Ranks with nothing left to contribute (absorbed
// before the cut, or rank 0 merely awaiting the final delivery) report
// preemption without a fragment.
type RankCheckpoint struct {
	M, N, Procs int
	Dom         int
	Stage       int // first stage this rank did not execute
	RootDom     int
	Merges      []CkptMerge
	R           []float64 // packed triangle; nil in cost-only mode
}

// StageCheckpoint is a whole TSQR job frozen at a tree-stage boundary:
// the original schedule and the live domains' R factors. It is complete —
// ResumeStaged needs nothing else — and small: O(d) merges plus at most
// d packed N×N triangles.
type StageCheckpoint struct {
	M, N, Procs int
	Stage       int // first unexecuted stage
	RootDom     int
	Merges      []CkptMerge
	R           map[int][]float64 // live domain -> packed triangle
}

// AssembleCheckpoint combines the per-rank fragments of one preempted
// execution into the portable checkpoint. The global cut is the minimum
// stop stage any fragment observed (ranks whose next merge lay further
// up the tree latch later stages; every merge between is unexecuted).
func AssembleCheckpoint(frags []*RankCheckpoint) *StageCheckpoint {
	var sc *StageCheckpoint
	for _, f := range frags {
		if f == nil {
			continue
		}
		if sc == nil {
			sc = &StageCheckpoint{
				M: f.M, N: f.N, Procs: f.Procs, Stage: f.Stage,
				RootDom: f.RootDom, Merges: f.Merges,
				R: make(map[int][]float64),
			}
		}
		if f.Stage < sc.Stage {
			sc.Stage = f.Stage
		}
		if f.R != nil {
			sc.R[f.Dom] = f.R
		}
	}
	return sc
}

// StagedResult is one rank's outcome of a staged (or resumed) execution.
type StagedResult struct {
	// R is the global R factor (comm rank 0, data mode, completed runs).
	R *matrix.Dense
	// Preempted reports that this rank stopped at a stage boundary.
	// Ranks absorbed before the cut finished their part and report false;
	// the caller detects preemption as "any member preempted".
	Preempted bool
	// Ckpt is this rank's checkpoint fragment (live domains only).
	Ckpt *RankCheckpoint
	// Domains is the domain count of the reduction.
	Domains int
}

// stageMerges levels the schedule: each merge runs one stage after the
// last stage either participant touched. Walking the global schedule in
// order keeps per-destination fold order intact (stages along one
// domain's merges are strictly increasing), each domain does at most one
// merge per stage, and the leveling works for any tree shape.
func stageMerges(sched []merge) []int {
	last := make(map[int]int, len(sched)+1)
	stages := make([]int, len(sched))
	for i, m := range sched {
		s := last[m.dst]
		if last[m.src] > s {
			s = last[m.src]
		}
		s++
		stages[i] = s
		last[m.dst] = s
		last[m.src] = s
	}
	return stages
}

// checkStagedConfig rejects configurations the staged executor does not
// support: it checkpoints one R per rank, so every domain must be a
// single process, and the backward Q pass / FT protocol / overlap
// pipelining have no stage-boundary freeze points.
func checkStagedConfig(comm *mpi.Comm, cfg Config, l *layout) {
	if cfg.WantQ || cfg.KeepFactors {
		panic("core: staged TSQR supports R-only runs")
	}
	if cfg.Overlap {
		panic("core: staged TSQR does not support overlap pipelining")
	}
	if cfg.FT.Enabled {
		panic("core: staged TSQR does not compose with FT-TSQR")
	}
	if len(l.domains) != comm.Size() {
		panic(fmt.Sprintf("core: staged TSQR needs one domain per process (got %d domains, %d procs)",
			len(l.domains), comm.Size()))
	}
}

// FactorizeStaged runs R-only TSQR with stage-boundary preemption. With
// a nil gate (or one never requested) it performs exactly the merges, in
// exactly the order, with exactly the messages of Factorize, and returns
// the identical R. When the gate stops it at a boundary, the returned
// fragments assemble (AssembleCheckpoint) into a StageCheckpoint that
// ResumeStaged completes on any same-size communicator.
func FactorizeStaged(comm *mpi.Comm, in Input, cfg Config, gate *PreemptGate) *StagedResult {
	in.validate(comm)
	ctx := comm.Ctx()
	cs := scheduleFor(comm, cfg)
	l, rootDom := cs.l, cs.rootDom
	checkStagedConfig(comm, cfg, l)
	me := comm.Rank()
	dom := l.mine(me)
	if rows := in.Offsets[dom.ranks[len(dom.ranks)-1]+1] - in.Offsets[dom.leader()]; rows < in.N {
		panic(fmt.Sprintf("core: domain %d has %d rows < N=%d (matrix not tall enough for this decomposition)",
			dom.id, rows, in.N))
	}
	stages := stagesFor(comm, cfg, cs)

	leafDone := ctx.Phase("tsqr.panel")
	leaf := factorLeaf(comm, in, dom, cfg)
	leafDone()

	res := &StagedResult{Domains: len(l.domains)}
	combineDone := ctx.Phase("tsqr.combine")
	defer combineDone()

	r := leaf.r
	ckpt := func(stopStage int) {
		res.Preempted = true
		res.Ckpt = &RankCheckpoint{
			M: in.M, N: in.N, Procs: comm.Size(),
			Dom: dom.id, Stage: stopStage, RootDom: rootDom,
			Merges: ckptMerges(cs, stages),
		}
		if ctx.HasData() {
			res.Ckpt.R = packTriu(r)
		}
	}

	absorbed := false
	for _, dm := range cs.perDom[dom.id] {
		stage := stages[dm.tag]
		if gate.shouldStop(stage) {
			ckpt(stage)
			return res
		}
		tag, m := dm.tag, dm.m
		if m.dst == dom.id {
			src := l.domains[m.src].leader()
			if ctx.HasData() {
				rOther := unpackTriu(comm.Recv(src, rTagBase+tag), in.N)
				r, _, _ = lapack.StackQR(r, rOther)
			} else {
				comm.Recv(src, rTagBase+tag)
			}
			ctx.ChargeKernel("stack_qr", flops.StackQR(in.N), in.N)
		} else {
			dst := l.domains[m.dst].leader()
			if ctx.HasData() {
				comm.Send(dst, packTriu(r), rTagBase+tag)
			} else {
				comm.SendBytes(dst, triuBytes(in.N), rTagBase+tag)
			}
			absorbed = true
			break // my R has been absorbed; forward pass over
		}
	}
	finishStaged(comm, in.N, rootDom, maxStage(stages), gate, r, absorbed, res, ckpt)
	return res
}

// ResumeStaged completes a checkpointed run on comm, which must have the
// checkpoint's process count. Domain ids map to comm ranks directly (the
// staged executor pins one domain per process), and the remaining merges
// of the original schedule are replayed verbatim — the destination
// partition's own topology is deliberately ignored, which is what makes
// the result bitwise identical wherever the job resumes. The gate may
// stop the resumed run again at a later boundary.
func ResumeStaged(comm *mpi.Comm, sc *StageCheckpoint, gate *PreemptGate) *StagedResult {
	ctx := comm.Ctx()
	if comm.Size() != sc.Procs {
		panic(fmt.Sprintf("core: resume on %d procs, checkpoint has %d", comm.Size(), sc.Procs))
	}
	me := comm.Rank()
	res := &StagedResult{Domains: sc.Procs}
	combineDone := ctx.Phase("tsqr.combine")
	defer combineDone()

	// A domain is live unless a merge below the cut absorbed it. (In data
	// mode the fragment map says the same thing; deriving liveness from
	// the schedule keeps cost-only checkpoints — which carry no triangles —
	// working identically.)
	live := true
	maxSt := 0
	for _, cm := range sc.Merges {
		if cm.Src == me && cm.Stage < sc.Stage {
			live = false
		}
		if cm.Stage > maxSt {
			maxSt = cm.Stage
		}
	}
	var r *matrix.Dense
	if live && ctx.HasData() {
		r = unpackTriu(sc.R[me], sc.N)
	}

	ckpt := func(stopStage int) {
		res.Preempted = true
		res.Ckpt = &RankCheckpoint{
			M: sc.M, N: sc.N, Procs: sc.Procs,
			Dom: me, Stage: stopStage, RootDom: sc.RootDom,
			Merges: sc.Merges,
		}
		if ctx.HasData() {
			res.Ckpt.R = packTriu(r)
		}
	}

	absorbed := !live
	if live {
		for _, cm := range sc.Merges {
			if cm.Stage < sc.Stage || (cm.Dst != me && cm.Src != me) {
				continue
			}
			if gate.shouldStop(cm.Stage) {
				ckpt(cm.Stage)
				return res
			}
			if cm.Dst == me {
				if ctx.HasData() {
					rOther := unpackTriu(comm.Recv(cm.Src, rTagBase+cm.Tag), sc.N)
					r, _, _ = lapack.StackQR(r, rOther)
				} else {
					comm.Recv(cm.Src, rTagBase+cm.Tag)
				}
				ctx.ChargeKernel("stack_qr", flops.StackQR(sc.N), sc.N)
			} else {
				if ctx.HasData() {
					comm.Send(cm.Dst, packTriu(r), rTagBase+cm.Tag)
				} else {
					comm.SendBytes(cm.Dst, triuBytes(sc.N), rTagBase+cm.Tag)
				}
				absorbed = true
				break
			}
		}
	}
	finishStaged(comm, sc.N, sc.RootDom, maxSt, gate, r, absorbed, res, ckpt)
	return res
}

// finishStaged performs the root-delivery step shared by the staged
// executor and the resume path: when a topology-oblivious tree finishes
// away from rank 0, one extra message — gated like a final stage, so a
// preemption can still stop before it — moves the result home. Absorbed
// ranks other than 0 have nothing left to do; rank 0, when it is not the
// root, must wait for (or checkpoint before) the delivery.
func finishStaged(comm *mpi.Comm, n, rootDom, maxStage int,
	gate *PreemptGate, r *matrix.Dense, absorbed bool, res *StagedResult, ckpt func(stage int)) {
	ctx := comm.Ctx()
	me := comm.Rank()
	if rootDom != 0 {
		deliverStage := maxStage + 1
		switch me {
		case rootDom:
			if gate.shouldStop(deliverStage) {
				ckpt(deliverStage)
				return
			}
			if ctx.HasData() {
				comm.Send(0, packTriu(r), finalRTag)
			} else {
				comm.SendBytes(0, triuBytes(n), finalRTag)
			}
			return
		case 0:
			if gate.shouldStop(deliverStage) {
				// Rank 0 holds no live R here — it only awaits the
				// delivery — so it reports preemption without a fragment.
				res.Preempted = true
				return
			}
			if buf := comm.Recv(rootDom, finalRTag); ctx.HasData() {
				r = unpackTriu(buf, n)
			}
			absorbed = false
		}
	}
	if me == 0 && !absorbed && ctx.HasData() {
		res.R = r
	}
}

func maxStage(stages []int) int {
	max := 0
	for _, s := range stages {
		if s > max {
			max = s
		}
	}
	return max
}

// stagesFor caches the stage leveling next to the compiled schedule.
func stagesFor(comm *mpi.Comm, cfg Config, cs *compiledSchedule) []int {
	key := fmt.Sprintf("core.stages|%s|p=%d|dpc=%d|tree=%d|seed=%d",
		comm.Path(), comm.Size(), cfg.DomainsPerCluster, cfg.Tree, cfg.ShuffleSeed)
	return comm.Ctx().World().Shared(key, func() any {
		return stageMerges(cs.sched)
	}).([]int)
}

// ckptMerges renders the compiled schedule with its stage labels.
func ckptMerges(cs *compiledSchedule, stages []int) []CkptMerge {
	out := make([]CkptMerge, len(cs.sched))
	for tag, m := range cs.sched {
		out[tag] = CkptMerge{Dst: m.dst, Src: m.src, Stage: stages[tag], Tag: tag}
	}
	return out
}
