package core

import (
	"math"
	"testing"

	"gridqr/internal/grid"
	"gridqr/internal/lapack"
	"gridqr/internal/matrix"
	"gridqr/internal/testmat"
)

// TestTSQRPropertySuite runs the distributed factorization over every
// shared input class from testmat: the computed R must match the
// sequential reference on full-rank inputs (relative, so extreme scales
// are held to the same standard) and preserve the Frobenius norm on
// rank-deficient ones, where R is not unique.
func TestTSQRPropertySuite(t *testing.T) {
	g := grid.SmallTestGrid(2, 2, 1) // 4 procs, 2 sites
	for _, tc := range testmat.Suite() {
		t.Run(tc.Name, func(t *testing.T) {
			global := tc.Gen(64, 5, 17)
			outs, _ := runFTGlobal(t, g, nil, global, Config{Tree: TreeGrid, FT: FTOptions{Enabled: true}})
			if outs[0].err != nil {
				t.Fatalf("rank 0 error: %v", outs[0].err)
			}
			r := outs[0].res.R.Clone()
			lapack.NormalizeRSigns(r, nil)
			scale := matrix.NormFrob(global)
			if tc.RankDeficient {
				if d := math.Abs(matrix.NormFrob(r) - scale); d > 1e-11*scale {
					t.Fatalf("‖R‖ drifted from ‖A‖ by %g", d)
				}
				if !matrix.IsUpperTriangular(r, 0) {
					t.Fatal("R not upper triangular")
				}
				return
			}
			ref := refR(global)
			if !matrix.Equal(r, ref, 1e-11*scale) {
				t.Fatalf("R differs from sequential reference beyond 1e-11·‖A‖")
			}
		})
	}
}
