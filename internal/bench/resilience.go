package bench

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"gridqr/internal/core"
	"gridqr/internal/grid"
	"gridqr/internal/matrix"
	"gridqr/internal/mpi"
	"gridqr/internal/scalapack"
)

// ResilienceRow is one fault scenario's outcome against FT-TSQR.
type ResilienceRow struct {
	Plan           string
	Outcome        string // "ok" or the typed abort reason
	Epochs         int
	Combines       int
	CombinesReused int
	Dead           int // ranks declared dead by the coordinator
	Faults         mpi.FaultCounts
	Residual       float64 // ‖A−Q̂R‖/‖A‖ on success (NaN on abort)
	Ortho          float64 // ‖Q̂ᵀQ̂−I‖_F on success (NaN on abort)
}

// resilienceScenario names one injected-fault configuration.
type resilienceScenario struct {
	name  string
	build func(seed int64, p int, g *grid.Grid) *mpi.FaultPlan
}

func resilienceScenarios() []resilienceScenario {
	withTimeout := func(p *mpi.FaultPlan) *mpi.FaultPlan {
		p.RecvTimeout = 2 * time.Second
		return p
	}
	return []resilienceScenario{
		{"none", func(seed int64, p int, g *grid.Grid) *mpi.FaultPlan { return nil }},
		{"kill-one", func(seed int64, p int, g *grid.Grid) *mpi.FaultPlan {
			return withTimeout(mpi.NewFaultPlan(seed).Kill(1+int(seed)%(p-1), 3))
		}},
		{"kill-two", func(seed int64, p int, g *grid.Grid) *mpi.FaultPlan {
			a := 1 + int(seed)%(p-1)
			b := 1 + int(seed+3)%(p-1)
			return withTimeout(mpi.NewFaultPlan(seed).Kill(a, 3).Kill(b, 3))
		}},
		{"kill-coordinator", func(seed int64, p int, g *grid.Grid) *mpi.FaultPlan {
			return withTimeout(mpi.NewFaultPlan(seed).Kill(0, 2))
		}},
		{"drop-storm-10%", func(seed int64, p int, g *grid.Grid) *mpi.FaultPlan {
			return withTimeout(mpi.NewFaultPlan(seed).
				Drop(mpi.AnyRank, mpi.AnyRank, mpi.AnyTag, 0.10, 0))
		}},
		{"delay-storm-40%", func(seed int64, p int, g *grid.Grid) *mpi.FaultPlan {
			return withTimeout(mpi.NewFaultPlan(seed).
				Delay(mpi.AnyRank, mpi.AnyRank, mpi.AnyTag, 0.40, 2e-3, 0))
		}},
		// The platform's own per-site failure rates, scaled up by 10³ so a
		// one-hour horizon yields a realistic ~10% per-rank death
		// probability at bench scale (the unscaled Grid'5000 rate of one
		// failure per node-year is invisible over a single run).
		{"site-failure-rates", func(seed int64, p int, g *grid.Grid) *mpi.FaultPlan {
			flaky := *g
			flaky.Clusters = append([]grid.Cluster(nil), g.Clusters...)
			for i := range flaky.Clusters {
				flaky.Clusters[i].FailureRate *= 1e3
			}
			return withTimeout(mpi.PlanFromFailureRates(&flaky, seed, 3600, 10))
		}},
	}
}

// resilienceGrid shrinks the platform to a data-carrying scale: the first
// two sites, four processes each, keeping every cluster's links and
// failure rate. FT-TSQR runs on real matrices (the recovered R is checked
// numerically), so the benchmark cannot use the cost-only 256-process
// worlds the throughput figures run on.
func resilienceGrid(g *grid.Grid) *grid.Grid {
	sub := g.Sites(min(2, len(g.Clusters)))
	shrunk := *sub
	shrunk.Clusters = append([]grid.Cluster(nil), sub.Clusters...)
	for i := range shrunk.Clusters {
		c := &shrunk.Clusters[i]
		if c.ProcsPerNode > 4 {
			c.ProcsPerNode = 4
		}
		c.Nodes = (4 + c.ProcsPerNode - 1) / c.ProcsPerNode
	}
	return &shrunk
}

// ResilienceStudy sweeps the named fault scenarios over FT-TSQR on a
// shrunken two-site slice of the platform and records, per scenario, how
// the factorization concluded: recovered (with the recovery effort —
// extra epochs, redone vs cache-reused combines) or aborted with which
// typed reason. Successful runs are verified numerically via Q̂ = A·R⁻¹.
func ResilienceStudy(g *grid.Grid, m, n int, seed int64) []ResilienceRow {
	sub := resilienceGrid(g)
	p := sub.Procs()
	global := matrix.Random(m, n, seed)
	offsets := scalapack.BlockOffsets(m, p)
	var rows []ResilienceRow
	for _, sc := range resilienceScenarios() {
		w := mpi.NewWorld(sub, mpi.WithFaults(sc.build(seed, p, sub)))
		var mu sync.Mutex
		var res *core.FTResult
		var rank0Err error
		w.Run(func(ctx *mpi.Ctx) {
			comm := mpi.WorldComm(ctx)
			in := core.Input{M: m, N: n, Offsets: offsets,
				Local: scalapack.Distribute(global, offsets, ctx.Rank())}
			r, err := core.FactorizeFT(comm, in, core.Config{FT: core.FTOptions{Enabled: true}})
			if ctx.Rank() == 0 {
				mu.Lock()
				res, rank0Err = r, err
				mu.Unlock()
			}
		})
		row := ResilienceRow{Plan: sc.name, Faults: w.FaultCounts(),
			Residual: math.NaN(), Ortho: math.NaN()}
		if res != nil && res.R != nil {
			row.Outcome = "ok"
			row.Epochs = res.Stats.Epochs
			row.Combines = res.Stats.Combines
			row.CombinesReused = res.Stats.CombinesReused
			row.Dead = len(res.Stats.Dead)
			q := qHatFromR(global, res.R)
			row.Residual = matrix.ResidualQR(global, q, res.R)
			row.Ortho = matrix.OrthoError(q)
		} else {
			row.Outcome = abortReason(rank0Err)
			var fe *core.FTError
			if errors.As(rank0Err, &fe) {
				row.Dead = len(fe.Dead)
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// abortReason renders rank 0's typed error for the table.
func abortReason(err error) string {
	var fe *core.FTError
	var rf *mpi.RankFailedError
	var te *mpi.TimeoutError
	switch {
	case errors.As(err, &fe):
		return "abort: " + fe.Reason.String()
	case errors.As(err, &rf):
		return "abort: peer failed"
	case errors.As(err, &te):
		return "abort: recv timeout"
	case err == nil:
		return "abort: coordinator dead"
	default:
		return "abort: " + err.Error()
	}
}

// qHatFromR recovers Q̂ = A·R⁻¹ by column back-substitution so a
// successful run's numerics can be verified from R alone.
func qHatFromR(a, r *matrix.Dense) *matrix.Dense {
	q := a.Clone()
	for j := 0; j < a.Cols; j++ {
		qj := q.Col(j)
		for k := 0; k < j; k++ {
			c := r.At(k, j)
			if c == 0 {
				continue
			}
			qk := q.Col(k)
			for i := range qj {
				qj[i] -= c * qk[i]
			}
		}
		d := r.At(j, j)
		for i := range qj {
			qj[i] /= d
		}
	}
	return q
}

// FormatResilience renders the study.
func FormatResilience(g *grid.Grid, m, n int, rows []ResilienceRow) string {
	var b strings.Builder
	sub := resilienceGrid(g)
	fmt.Fprintf(&b, "== Resilience: FT-TSQR under injected faults (M=%d, N=%d, P=%d, %d site(s)) ==\n",
		m, n, sub.Procs(), len(sub.Clusters))
	fmt.Fprintf(&b, "%-18s %-26s %6s %8s %7s %5s %6s %6s %6s %10s %10s\n",
		"fault plan", "outcome", "epochs", "combines", "reused", "dead",
		"drops", "delays", "kills", "‖A−QR‖/‖A‖", "‖QᵀQ−I‖")
	for _, r := range rows {
		res, ortho := "-", "-"
		if !math.IsNaN(r.Residual) {
			res = fmt.Sprintf("%.2e", r.Residual)
			ortho = fmt.Sprintf("%.2e", r.Ortho)
		}
		fmt.Fprintf(&b, "%-18s %-26s %6d %8d %7d %5d %6d %6d %6d %10s %10s\n",
			r.Plan, r.Outcome, r.Epochs, r.Combines, r.CombinesReused, r.Dead,
			r.Faults.Drops, r.Faults.Delays, r.Faults.Kills, res, ortho)
	}
	return b.String()
}
