package bench

import (
	"testing"

	"gridqr/internal/grid"
	"gridqr/internal/mpi"
)

func TestResilienceStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("kill scenarios wait out recv timeouts; skipped in -short mode")
	}
	g := grid.Grid5000()
	rows := ResilienceStudy(g, 512, 8, 13)
	byName := map[string]ResilienceRow{}
	for _, r := range rows {
		byName[r.Plan] = r
	}
	if len(rows) != len(resilienceScenarios()) {
		t.Fatalf("rows = %d, want one per scenario", len(rows))
	}
	if r := byName["none"]; r.Outcome != "ok" || r.Epochs != 1 || r.Faults != (mpi.FaultCounts{}) {
		t.Fatalf("fault-free row broken: %+v", r)
	}
	if r := byName["kill-one"]; r.Outcome != "ok" || r.Epochs != 2 || r.Dead != 1 {
		t.Fatalf("kill-one must recover in one extra epoch: %+v", r)
	}
	if r := byName["kill-coordinator"]; r.Outcome == "ok" {
		t.Fatalf("kill-coordinator cannot succeed: %+v", r)
	}
	for _, r := range rows {
		if r.Outcome != "ok" {
			continue
		}
		if r.Residual > 1e-12 || r.Ortho > 1e-12 {
			t.Fatalf("%s: success outside ε-level bounds: %+v", r.Plan, r)
		}
	}
	if s := FormatResilience(g, 512, 8, rows); len(s) == 0 {
		t.Fatal("empty table")
	}
}
