package bench

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"gridqr/internal/core"
	"gridqr/internal/mpi"
	"gridqr/internal/scalapack"
	"gridqr/internal/telemetry"
)

// TestScaleSmoke4k is the CI `scale` job's structural check: the 4k-rank
// cost-only point must run on the event engine and reproduce the exact
// communication structure the sweep is built around — a binomial-family
// reduction sends ranks−1 messages, the asymmetric two-continent
// platform costs the grid tree two inter-continental hops, and the
// multi-level tree exactly continents−1 = 1.
func TestScaleSmoke4k(t *testing.T) {
	const ranks = 4096
	for _, tc := range []struct {
		tree               core.Tree
		wantInterSite      int64
		wantInterContinent int64
	}{
		{core.TreeGrid, 3, 2},
		{core.TreeMultiLevel, 3, 1},
	} {
		t.Run(tc.tree.String(), func(t *testing.T) {
			sr, stats := ScalePoint(ranks, TSQR, tc.tree)
			if sr.Engine != "event" {
				t.Errorf("engine = %q, want event", sr.Engine)
			}
			if sr.Msgs != ranks-1 {
				t.Errorf("msgs = %d, want %d (binomial reduction)", sr.Msgs, ranks-1)
			}
			if sr.InterSiteMsgs != tc.wantInterSite {
				t.Errorf("inter-site msgs = %d, want %d", sr.InterSiteMsgs, tc.wantInterSite)
			}
			if sr.InterContinentMsgs != tc.wantInterContinent {
				t.Errorf("inter-continent msgs = %d, want %d", sr.InterContinentMsgs, tc.wantInterContinent)
			}
			if sr.Seconds <= 0 || sr.ModelSeconds <= 0 {
				t.Errorf("times not positive: virtual %g, model %g", sr.Seconds, sr.ModelSeconds)
			}
			// The pending-message high-water mark is the engine's memory
			// story: a binomial round has at most ranks/2 messages in
			// flight, never O(ranks × mailbox depth).
			if stats.PeakPending > ranks {
				t.Errorf("peak pending = %d, want ≤ %d", stats.PeakPending, ranks)
			}
		})
	}
}

// TestScale32kMemoryCeiling proves the tentpole claim: a 32k-rank
// cost-only sweep point fits in O(active events + ranks) memory, not
// O(ranks × goroutine stack × mailbox). The ceiling is generous (64 KiB
// per rank covers the coroutine bookkeeping, the per-rank clocks/counter
// arrays and the O(ranks) trace spans) but categorically below the
// ~8 MiB-per-goroutine-stack regime the event engine replaces.
func TestScale32kMemoryCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("32k-rank point skipped in -short")
	}
	const ranks = 32768
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	sr, stats := ScalePoint(ranks, TSQR, core.TreeMultiLevel)
	runtime.ReadMemStats(&after)

	if sr.Engine != "event" {
		t.Fatalf("engine = %q, want event", sr.Engine)
	}
	if sr.Msgs != ranks-1 || sr.InterContinentMsgs != 1 {
		t.Errorf("structure drifted: msgs %d inter-continent %d", sr.Msgs, sr.InterContinentMsgs)
	}
	// TotalAlloc counts every byte ever allocated during the point —
	// a much stricter bound than live heap, and immune to GC timing.
	allocated := after.TotalAlloc - before.TotalAlloc
	const ceiling = 64 << 10 // bytes per rank
	if perRank := allocated / ranks; perRank > ceiling {
		t.Errorf("allocated %d bytes = %d B/rank, want ≤ %d B/rank", allocated, perRank, ceiling)
	}
	if stats.PeakPending > ranks {
		t.Errorf("peak pending = %d, want ≤ %d (O(active events))", stats.PeakPending, ranks)
	}
}

// TestScaleCrossEngine256 re-checks engine equivalence at the bench
// level, on the real TSQR and ScaLAPACK codes over the synthetic scale
// platform at 256 ranks: identical counters, virtual end time and traced
// critical-path decomposition whichever engine runs the world.
func TestScaleCrossEngine256(t *testing.T) {
	const (
		ranks = 256
		m     = ranks * scaleRowsPerRank
	)
	g := ScalePlatform(ranks)
	offsets := scalapack.BlockOffsets(m, ranks)
	bodies := map[string]func(ctx *mpi.Ctx){
		"tsqr-grid": func(ctx *mpi.Ctx) {
			core.Factorize(mpi.WorldComm(ctx), core.Input{M: m, N: ScaleN, Offsets: offsets},
				core.Config{Tree: core.TreeGrid})
		},
		"tsqr-multi-level": func(ctx *mpi.Ctx) {
			core.Factorize(mpi.WorldComm(ctx), core.Input{M: m, N: ScaleN, Offsets: offsets},
				core.Config{Tree: core.TreeMultiLevel})
		},
		"scalapack": func(ctx *mpi.Ctx) {
			scalapack.PDGEQR2(mpi.WorldComm(ctx), scalapack.Input{M: m, N: ScaleN, Offsets: offsets})
		},
	}
	for name, body := range bodies {
		name, body := name, body
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			type outcome struct {
				counters mpi.CounterSnapshot
				maxClock float64
				crit     telemetry.CriticalPath
			}
			run := func(force bool) outcome {
				opts := []mpi.Option{mpi.CostOnly(), mpi.Traced()}
				if force {
					opts = append(opts, mpi.GoroutineEngine())
				}
				w := mpi.NewWorld(g, opts...)
				w.Run(body)
				crit := telemetry.AnalyzeCriticalPath(w.Trace())
				crit.Steps = nil // compared via the summary fields
				return outcome{counters: w.Counters(), maxClock: w.MaxClock(), crit: crit}
			}
			ev, gor := run(false), run(true)
			if ev.counters.PerClass != gor.counters.PerClass {
				t.Errorf("per-class counters diverge:\n event:    %+v\n goroutine: %+v",
					ev.counters.PerClass, gor.counters.PerClass)
			}
			// The global flop counter sums per-rank contributions in
			// scheduling order, so the goroutine engine may differ in the
			// last few ULPs; everything else must be bitwise equal.
			if d := math.Abs(ev.counters.Flops - gor.counters.Flops); d > 1e-9*ev.counters.Flops {
				t.Errorf("flops diverge: event %v vs goroutine %v", ev.counters.Flops, gor.counters.Flops)
			}
			if ev.maxClock != gor.maxClock {
				t.Errorf("virtual end time diverges: event %.9f vs goroutine %.9f", ev.maxClock, gor.maxClock)
			}
			if !reflect.DeepEqual(ev.crit, gor.crit) {
				t.Errorf("critical path diverges:\n event:    %+v\n goroutine: %+v", ev.crit, gor.crit)
			}
		})
	}
}

// TestScaleStudyFiltering pins the sweep's budget knobs: maxRanks caps
// the rank counts, and the flat tree and ScaLAPACK reference never run
// above ScaleScaLAPACKCap.
func TestScaleStudyFiltering(t *testing.T) {
	runs := ScaleStudy(1024, []core.Tree{core.TreeGrid, core.TreeFlat})
	var algos []string
	for _, r := range runs {
		if r.Ranks > 1024 {
			t.Errorf("run at %d ranks exceeds maxRanks", r.Ranks)
		}
		algos = append(algos, r.Algo+"/"+r.Tree)
	}
	want := []string{"TSQR/grid", "TSQR/flat", "ScaLAPACK/"}
	if !reflect.DeepEqual(algos, want) {
		t.Errorf("runs = %v, want %v", algos, want)
	}
	if c := ScaleCrossovers(runs); c[1024] == "" {
		t.Errorf("no crossover winner recorded at 1024 ranks: %v", c)
	}
}

// TestScalePlatformShape pins the synthetic hierarchy the sweep depends
// on: two continents of unequal weight, so rank-major binomial trees
// cannot accidentally align with the continent level.
func TestScalePlatformShape(t *testing.T) {
	g := ScalePlatform(1024)
	if got := g.Procs(); got != 1024 {
		t.Errorf("procs = %d, want 1024", got)
	}
	if got := g.Continents(); got != 2 {
		t.Errorf("continents = %d, want 2", got)
	}
	perCont := map[int]int{}
	for c := range g.Clusters {
		perCont[g.ContinentOf(c)]++
	}
	if perCont[0] == perCont[1] {
		t.Errorf("continent weights equal (%v); asymmetry is what separates the trees", perCont)
	}
	defer func() {
		if recover() == nil {
			t.Error("non-multiple-of-32 rank count did not panic")
		}
	}()
	ScalePlatform(100)
}
