// Package bench is the experiment harness: it re-runs every figure and
// table of the paper's evaluation (Section V) on the simulated Grid'5000
// platform and returns the same series the paper plots, alongside the
// Section IV model predictions.
//
// All experiment runs execute the real distributed algorithms in
// cost-only virtual-time mode: one goroutine per process, every message
// priced by the link it traverses, every kernel charged its flop count —
// so "who wins, by what factor, where the crossovers fall" is measured
// from the actual communication structure, not assumed.
package bench

import (
	"fmt"
	"strings"

	"gridqr/internal/core"
	"gridqr/internal/grid"
	"gridqr/internal/mpi"
	"gridqr/internal/perfmodel"
	"gridqr/internal/scalapack"
	"gridqr/internal/telemetry"
)

// Algorithm selects the factorization under test.
type Algorithm int

const (
	ScaLAPACK Algorithm = iota // PDGEQRF with the paper's NB/NX defaults
	TSQR                       // QCG-TSQR with the grid-tuned tree
)

func (a Algorithm) String() string {
	if a == ScaLAPACK {
		return "ScaLAPACK"
	}
	return "TSQR"
}

// Run describes one experiment point.
type Run struct {
	Grid  *grid.Grid // the full platform; Sites selects a prefix
	Sites int
	M, N  int
	Algo  Algorithm
	// DomainsPerCluster applies to TSQR: 0 = one domain per process.
	DomainsPerCluster int
	Tree              core.Tree
	WantQ             bool
	// NB and NX override ScaLAPACK's block size and crossover
	// (0 = the paper's defaults). The standard N=64 runs sit below the
	// default crossover and never block; overlap studies lower both so
	// PDGEQRF actually performs block updates.
	NB, NX int
	// Overlap selects the compute/communication-overlap variants:
	// posted-receive TSQR with the flat cross-site stage, or lookahead
	// PDGEQRF. Traffic totals are identical to the blocking variants.
	Overlap bool
	// Traced records a structured telemetry trace and metrics registry
	// during the run, enabling the critical-path and communication-matrix
	// fields of the Measurement (small per-event overhead).
	Traced bool
}

// Measurement is the outcome of a Run.
type Measurement struct {
	Seconds float64 // simulated completion time
	Gflops  float64 // paper's performance metric
	// Traffic split by link class, plus total charged flops.
	Counters mpi.CounterSnapshot
	// Breakdown splits the critical rank's time into computation and
	// per-link-class message waiting (Section V-E).
	Breakdown mpi.TimeBreakdown
	// Model predictions from perfmodel for the same point.
	ModelSeconds float64
	ModelGflops  float64
	// Telemetry products, populated only for Traced runs.
	Trace        *telemetry.Trace
	CriticalPath *telemetry.CriticalPath
	CommMatrix   *telemetry.CommMatrix
	Registry     *telemetry.Registry
}

// Execute runs one experiment point in cost-only simulation.
func Execute(r Run) Measurement {
	g := r.Grid.Sites(r.Sites)
	opts := []mpi.Option{mpi.CostOnly()}
	var reg *telemetry.Registry
	if r.Traced {
		reg = telemetry.NewRegistry()
		opts = append(opts, mpi.Traced(), mpi.WithMetrics(reg))
	}
	w := mpi.NewWorld(g, opts...)
	procs := g.Procs()
	offsets := scalapack.BlockOffsets(r.M, procs)
	w.Run(func(ctx *mpi.Ctx) {
		comm := mpi.WorldComm(ctx)
		switch r.Algo {
		case ScaLAPACK:
			in := scalapack.Input{M: r.M, N: r.N, Offsets: offsets}
			var f *scalapack.Factorization
			if r.Overlap {
				f = scalapack.PDGEQRFLookahead(comm, in, r.NB, r.NX)
			} else {
				f = scalapack.PDGEQRF(comm, in, r.NB, r.NX)
			}
			if r.WantQ {
				scalapack.PDORG2R(comm, f)
			}
		case TSQR:
			in := core.Input{M: r.M, N: r.N, Offsets: offsets}
			core.Factorize(comm, in, core.Config{
				DomainsPerCluster: r.DomainsPerCluster,
				Tree:              r.Tree,
				WantQ:             r.WantQ,
				Overlap:           r.Overlap,
			})
		}
	})
	sec := w.MaxClock()
	m := Measurement{
		Seconds:   sec,
		Gflops:    perfmodel.Gflops(r.M, r.N, r.WantQ, sec),
		Counters:  w.Counters(),
		Breakdown: w.BreakdownOf(0),
	}
	if r.Traced {
		m.Trace = w.Trace()
		cp := telemetry.AnalyzeCriticalPath(m.Trace)
		m.CriticalPath = &cp
		cm := telemetry.BuildCommMatrix(m.Trace)
		m.CommMatrix = &cm
		m.Registry = reg
	}
	pred := perfmodel.Predictor{G: r.Grid, Sites: r.Sites, DomainsPerCluster: r.DomainsPerCluster}
	switch {
	case r.Algo == ScaLAPACK:
		m.ModelSeconds = pred.ScaLAPACKTime(r.M, r.N, r.WantQ)
	case r.Tree == core.TreeMultiLevel:
		m.ModelSeconds = pred.TSQRTimeMultiLevel(r.M, r.N, r.WantQ)
	default:
		m.ModelSeconds = pred.TSQRTime(r.M, r.N, r.WantQ)
	}
	m.ModelGflops = perfmodel.Gflops(r.M, r.N, r.WantQ, m.ModelSeconds)
	return m
}

// Point is one x/y sample of a series, with the model's prediction.
type Point struct {
	X      float64 // M, or domain count, depending on the figure
	Gflops float64
	Model  float64
}

// Series is one curve of a panel.
type Series struct {
	Label  string
	Points []Point
}

// Panel is one subplot (one value of N, in the paper's figures).
type Panel struct {
	Title  string
	XLabel string
	Series []Series
}

// Figure is a full multi-panel figure.
type Figure struct {
	Name   string
	Title  string
	Panels []Panel
}

// String renders the figure as aligned text tables, one per panel — the
// textual equivalent of the paper's plots.
func (f Figure) String() string {
	out := fmt.Sprintf("== %s: %s ==\n", f.Name, f.Title)
	for _, p := range f.Panels {
		out += fmt.Sprintf("\n-- %s --\n", p.Title)
		out += fmt.Sprintf("%14s", p.XLabel)
		for _, s := range p.Series {
			out += fmt.Sprintf("  %22s", s.Label)
		}
		out += "\n"
		for i := range p.Series[0].Points {
			out += fmt.Sprintf("%14.0f", p.Series[0].Points[i].X)
			for _, s := range p.Series {
				pt := s.Points[i]
				out += fmt.Sprintf("  %10.1f (mdl %6.1f)", pt.Gflops, pt.Model)
			}
			out += "\n"
		}
	}
	return out
}

// CSV renders the figure as comma-separated records
// (panel,series,x,gflops,model) for external plotting tools.
func (f Figure) CSV() string {
	var b strings.Builder
	b.WriteString("panel,series,x,gflops,model_gflops\n")
	for _, p := range f.Panels {
		for _, s := range p.Series {
			for _, pt := range s.Points {
				fmt.Fprintf(&b, "%q,%q,%g,%g,%g\n", p.Title, s.Label, pt.X, pt.Gflops, pt.Model)
			}
		}
	}
	return b.String()
}
