package bench

import (
	"fmt"
	"strings"

	"gridqr/internal/core"
	"gridqr/internal/grid"
	"gridqr/internal/mpi"
	"gridqr/internal/scalapack"
)

// StragglerRow records how much one slowed-down process inflates the
// completion time of each algorithm.
type StragglerRow struct {
	Factor    float64 // the straggler's slowdown (1 = baseline)
	TSQRInfl  float64 // completion time relative to the no-straggler run
	SLInfl    float64
	TSQRIdeal float64 // inflation if only the straggler's own work slowed
}

// StragglerStudy is a first quantitative look at the paper's stated
// future work ("porting the work to a general desktop grid"): desktop
// grids have volatile, background-loaded hosts. One process is slowed by
// a sweep of factors and both algorithms are re-run; the question is how
// much of the slowdown leaks into everyone's completion time. A perfectly
// balanced synchronous algorithm is fully hostage to its slowest member
// (inflation ≈ factor·compute-share); what distinguishes the algorithms
// is how much communication structure amplifies the damage beyond that.
func StragglerStudy(g *grid.Grid, m, n int, factors []float64) []StragglerRow {
	run := func(algo Algorithm, factor float64) float64 {
		sub := g.Sites(len(g.Clusters))
		opts := []mpi.Option{mpi.CostOnly()}
		if factor > 1 {
			opts = append(opts, mpi.Slowdown(sub.Procs()/2, factor)) // mid-grid rank
		}
		w := mpi.NewWorld(sub, opts...)
		offsets := scalapack.BlockOffsets(m, sub.Procs())
		w.Run(func(ctx *mpi.Ctx) {
			comm := mpi.WorldComm(ctx)
			switch algo {
			case TSQR:
				core.Factorize(comm, core.Input{M: m, N: n, Offsets: offsets},
					core.Config{Tree: core.TreeGrid})
			case ScaLAPACK:
				scalapack.PDGEQR2(comm, scalapack.Input{M: m, N: n, Offsets: offsets})
			}
		})
		return w.MaxClock()
	}
	baseTSQR := run(TSQR, 1)
	baseSL := run(ScaLAPACK, 1)
	var rows []StragglerRow
	for _, f := range factors {
		rows = append(rows, StragglerRow{
			Factor:   f,
			TSQRInfl: run(TSQR, f) / baseTSQR,
			SLInfl:   run(ScaLAPACK, f) / baseSL,
		})
	}
	return rows
}

// FormatStragglers renders the study.
func FormatStragglers(m, n int, rows []StragglerRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Straggler sensitivity: one slowed process, M=%d, N=%d, 4 sites ==\n", m, n)
	fmt.Fprintf(&b, "%12s %18s %18s\n", "slowdown", "TSQR inflation", "ScaLAPACK inflation")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10.1fx %17.2fx %17.2fx\n", r.Factor, r.TSQRInfl, r.SLInfl)
	}
	return b.String()
}
