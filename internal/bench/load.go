package bench

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"strings"
	"time"

	"gridqr/internal/elastic"
	"gridqr/internal/grid"
	"gridqr/internal/perfmodel"
	"gridqr/internal/sched"
	"gridqr/internal/telemetry"
)

// Open-loop load harness: a trace-driven arrival process (Poisson,
// bursty, or diurnal replay) submits jobs on its own clock — never
// waiting for completions — with the SLO-driven autoscaler re-forming
// the partition plan in the loop. Unlike the closed-loop sweep above,
// offered load is decoupled from service capacity, so past the knee the
// queue saturates and the server sheds typed (ErrQueueFull) instead of
// silently stretching latency.
//
// Determinism contract for the perf gate: every ladder level is built
// from EQUAL-SIZE two-site partitions, and preemption/resume conserves
// per-job traffic exactly, so msgs/job, inter-site msgs/job and
// bytes/job are invariant under any autoscaling, stealing or preemption
// timing the host produces. Arrival counts come from the seeded trace.
// Admission splits (completed vs shed), latency quantiles and
// throughput are host-dependent and never gated.

// Standard open-loop sweep shape for the committed report.
var StandardLoadRates = []float64{100, 500, 2500}

// LoadArrivals is the arrivals per load point of the standard sweep.
const LoadArrivals = 160

// LoadRun is one (trace, offered-rate) point of the open-loop study.
type LoadRun struct {
	Trace    string  `json:"trace"`
	RatePerS float64 `json:"rate_per_s"`
	// Arrivals is the trace length — deterministic, gated.
	Arrivals int `json:"arrivals"`

	// Admission split (host-dependent, informational) — except Lost,
	// which counts admitted jobs that never completed and must be zero:
	// the serving layer never silently drops an accepted job.
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Shed      int64 `json:"shed"`
	Failed    int64 `json:"failed"`
	Lost      int64 `json:"lost"`

	// Autoscaler and scheduler activity during the run (informational).
	ScaleUps    int   `json:"scale_ups"`
	ScaleDowns  int   `json:"scale_downs"`
	Preemptions int64 `json:"preemptions"`
	Steals      int64 `json:"steals"`

	// Wall-clock serving performance (host-dependent, never gated).
	ThroughputJPS   float64 `json:"throughput_jobs_per_s"`
	P50Seconds      float64 `json:"p50_seconds"`
	P99Seconds      float64 `json:"p99_seconds"`
	P999Seconds     float64 `json:"p999_seconds"`
	QueueP99Seconds float64 `json:"queue_p99_seconds"`

	// Deterministic per-job traffic (gated): invariant under scaling,
	// preemption and stealing because partitions are equal-size and
	// checkpoint/resume conserves messages exactly.
	MsgsPerJob          int64   `json:"msgs_per_job"`
	InterSiteMsgsPerJob int64   `json:"inter_site_msgs_per_job"`
	BytesPerJob         float64 `json:"bytes_per_job"`
}

// LoadOptions configures the open-loop study; the zero value reproduces
// the committed benchmark.
type LoadOptions struct {
	// Logger receives per-job lifecycle records. Nil means silent.
	Logger *slog.Logger
	// OnPoint fires when a load point's server starts serving.
	OnPoint func(srv *sched.Server, reg *telemetry.Registry)
	// QueueCap bounds admission (default 32); the knee's shedding rate
	// is a direct function of it.
	QueueCap int
	// NoAutoscale pins the plan to the ladder's first level.
	NoAutoscale bool
	// DrainTimeout bounds the post-trace drain of in-flight jobs after
	// ctx cancellation (default 30s).
	DrainTimeout time.Duration
}

// loadLadder builds the capacity ladder and the single-partition
// predictor for a platform: level 0 serves from the first partition
// only (the rest of the grid idles as spares), the top level uses every
// partition. Partitions pair sites when possible, matching servePlan,
// so every level's partitions are the same size.
func loadLadder(g *grid.Grid) ([]sched.Plan, perfmodel.Predictor) {
	full := servePlan(g)
	sites := 2
	if len(g.Clusters) < 2 || len(g.Clusters)%2 != 0 {
		sites = 1
	}
	pred := perfmodel.Predictor{G: g, Sites: sites}
	var ladder []sched.Plan
	for lvl := 1; lvl <= len(full.Groups); lvl *= 2 {
		ladder = append(ladder, sched.Plan{Groups: full.Groups[:lvl]})
	}
	if top := len(full.Groups); len(ladder) > 0 &&
		len(ladder[len(ladder)-1].Groups) != top {
		ladder = append(ladder, full)
	}
	return ladder, pred
}

// makeTrace constructs the named arrival process for one load point.
// Seeds are fixed functions of the rate so every run of the benchmark
// replays the identical trace.
func makeTrace(arrival string, rate float64, n int) (elastic.Trace, error) {
	seed := int64(rate*1000) + 17
	switch arrival {
	case "poisson":
		return elastic.Poisson(rate, n, seed), nil
	case "bursty":
		return elastic.Bursty(rate, 4, 16, n, seed), nil
	case "diurnal":
		// One full diurnal swing over the trace: the "day" is compressed
		// to the nominal trace duration.
		period := time.Duration(float64(n) / rate * float64(time.Second))
		return elastic.Diurnal(rate, 0.8, period, n, seed), nil
	default:
		return nil, fmt.Errorf("bench: unknown arrival process %q", arrival)
	}
}

// LoadStudy runs the open-loop sweep: for each offered rate, a fresh
// cost-only server starts at the ladder's lowest level and the trace
// drives submissions while the autoscaler steps in the loop. Canceling
// ctx stops the arrival process; admitted jobs are drained (bounded by
// DrainTimeout) and the rows finished so far are returned with ctx's
// error.
func LoadStudy(ctx context.Context, g *grid.Grid, arrival string, rates []float64,
	arrivals int, opts LoadOptions) ([]LoadRun, error) {
	if opts.QueueCap <= 0 {
		opts.QueueCap = 32
	}
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = 30 * time.Second
	}
	var out []LoadRun
	for _, rate := range rates {
		row, err := loadOnePoint(ctx, g, arrival, rate, arrivals, opts)
		if err != nil {
			return out, err
		}
		out = append(out, row)
		if ctx.Err() != nil {
			return out, ctx.Err()
		}
	}
	return out, nil
}

func loadOnePoint(ctx context.Context, g *grid.Grid, arrival string, rate float64,
	arrivals int, opts LoadOptions) (LoadRun, error) {
	tr, err := makeTrace(arrival, rate, arrivals)
	if err != nil {
		return LoadRun{}, err
	}
	ladder, pred := loadLadder(g)
	reg := telemetry.NewRegistry()
	srv := sched.Start(sched.Config{
		Grid:     g,
		Plan:     ladder[0],
		QueueCap: opts.QueueCap,
		MaxBatch: 1, // per-job traffic must stay invariant
		CostOnly: true,
		Registry: reg,
		Logger:   opts.Logger,
	})
	defer srv.Close()
	if opts.OnPoint != nil {
		opts.OnPoint(srv, reg)
	}

	var as *elastic.Autoscaler
	if !opts.NoAutoscale {
		as, err = elastic.New(srv, elastic.Config{
			Ladder: ladder,
			Pred:   pred,
			Policy: elastic.Policy{
				M: ServeM, N: ServeN,
				Target:   250 * time.Millisecond,
				Cooldown: 4,
			},
		})
		if err != nil {
			return LoadRun{}, err
		}
	}

	row := LoadRun{Trace: tr.Name(), RatePerS: rate}
	var futures []*sched.Job
	start := time.Now()
	for {
		gap, ok := tr.Next()
		if !ok || ctx.Err() != nil {
			break
		}
		row.Arrivals++
		time.Sleep(gap)
		j, err := srv.Submit(sched.JobSpec{
			Kind: sched.KindTSQR, M: ServeM, N: ServeN,
			Seed:        int64(row.Arrivals),
			Preemptible: true,
		})
		switch {
		case err == nil:
			row.Submitted++
			futures = append(futures, j)
		case errors.Is(err, sched.ErrQueueFull):
			row.Shed++ // graceful shedding: typed backpressure, not a timeout
		default:
			return row, fmt.Errorf("bench: open-loop submit: %w", err)
		}
		if as != nil {
			if _, err := as.Step(); err != nil {
				return row, fmt.Errorf("bench: autoscaler step: %w", err)
			}
		}
	}

	// Drain discipline: every admitted job is waited out, even after
	// cancellation (bounded), so Lost really measures the server.
	var totals struct {
		msgs, inter int64
		bytes       float64
	}
	deadline := time.NewTimer(opts.DrainTimeout)
	defer deadline.Stop()
	for _, j := range futures {
		if ctx.Err() != nil {
			select {
			case <-j.Done():
			case <-deadline.C:
				return row, fmt.Errorf("%w (rate %g/s)", ErrDrainTimeout, rate)
			}
		}
		res := j.Result()
		if res.Err != nil {
			row.Failed++
			continue
		}
		row.Completed++
		row.Preemptions += int64(res.Preemptions)
		totals.msgs += res.Counters.Total().Msgs
		totals.bytes += res.Counters.Total().Bytes
		totals.inter += res.Counters.Inter().Msgs
	}
	elapsed := time.Since(start)

	row.Lost = row.Submitted - row.Completed - row.Failed
	if as != nil {
		row.ScaleUps, row.ScaleDowns, _ = as.Stats()
	}
	row.Steals = srv.Stats().Steals
	slo := srv.SLO()
	row.ThroughputJPS = float64(row.Completed) / elapsed.Seconds()
	row.P50Seconds = slo.Latency.P50
	row.P99Seconds = slo.Latency.P99
	row.P999Seconds = slo.Latency.P999
	row.QueueP99Seconds = slo.QueueWait.P99
	if row.Completed > 0 {
		row.MsgsPerJob = totals.msgs / row.Completed
		row.InterSiteMsgsPerJob = totals.inter / row.Completed
		row.BytesPerJob = totals.bytes / float64(row.Completed)
	}
	return row, nil
}

// BuildLoadRuns executes the standard open-loop sweep for the committed
// report: the Poisson rate ladder plus one bursty and one diurnal point
// at the middle rate, autoscaler on.
func BuildLoadRuns(g *grid.Grid) []LoadRun {
	var out []LoadRun
	mid := StandardLoadRates[len(StandardLoadRates)/2]
	points := []struct {
		arrival string
		rates   []float64
	}{
		{"poisson", StandardLoadRates},
		{"bursty", []float64{mid}},
		{"diurnal", []float64{mid}},
	}
	for _, p := range points {
		rows, err := LoadStudy(context.Background(), g, p.arrival, p.rates,
			LoadArrivals, LoadOptions{})
		if err != nil {
			panic(err)
		}
		out = append(out, rows...)
	}
	return out
}

// FormatLoad renders the open-loop study as the latency-vs-offered-load
// table the experiments document quotes.
func FormatLoad(g *grid.Grid, rows []LoadRun) string {
	var b strings.Builder
	ladder, _ := loadLadder(g)
	top := ladder[len(ladder)-1]
	fmt.Fprintf(&b, "== Open-loop serving: trace-driven TSQR arrivals (M=%d, N=%d, ladder 1..%d × %d ranks, autoscaled) ==\n",
		ServeM, ServeN, len(top.Groups), len(top.Groups[0]))
	fmt.Fprintf(&b, "%8s %8s %5s %5s %5s %5s %5s %4s %9s %9s %9s %9s %9s %9s\n",
		"trace", "rate/s", "arr", "done", "shed", "lost", "preempt", "up",
		"jobs/s", "p50 (s)", "p99 (s)", "p999 (s)", "msgs/job", "inter/job")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8s %8.0f %5d %5d %5d %5d %7d %4d %9.1f %9.2g %9.2g %9.2g %9d %9d\n",
			r.Trace, r.RatePerS, r.Arrivals, r.Completed, r.Shed, r.Lost, r.Preemptions,
			r.ScaleUps, r.ThroughputJPS, r.P50Seconds, r.P99Seconds, r.P999Seconds,
			r.MsgsPerJob, r.InterSiteMsgsPerJob)
	}
	return b.String()
}
