package bench

import (
	"fmt"
	"strings"

	"gridqr/internal/core"
	"gridqr/internal/grid"
)

// WeakScalingRow is one point of the weak-scaling study: the per-process
// work is fixed (rowsPerProc·N) and sites are added.
type WeakScalingRow struct {
	Sites      int
	M          int // total rows = rowsPerProc × procs
	Gflops     float64
	Efficiency float64 // Gflops / (sites × single-site Gflops)
}

// WeakScaling grows the problem with the machine: every added site brings
// its own rows. An algorithm that scales keeps efficiency near 1 — the
// operating regime a grid user actually cares about ("my data grows with
// my machine"), complementing the paper's fixed-M (strong-scaling)
// figures.
func WeakScaling(g *grid.Grid, algo Algorithm, rowsPerProc, n int) []WeakScalingRow {
	var rows []WeakScalingRow
	var base float64
	for sites := 1; sites <= len(g.Clusters); sites++ {
		procs := g.Sites(sites).Procs()
		m := rowsPerProc * procs
		r := Run{Grid: g, Sites: sites, M: m, N: n, Algo: algo, Tree: core.TreeGrid}
		if algo == TSQR {
			r.DomainsPerCluster = 0 // one domain per process
		}
		meas := Execute(r)
		if sites == 1 {
			base = meas.Gflops
		}
		rows = append(rows, WeakScalingRow{
			Sites:      sites,
			M:          m,
			Gflops:     meas.Gflops,
			Efficiency: meas.Gflops / (float64(sites) * base),
		})
	}
	return rows
}

// FormatWeakScaling renders both algorithms' weak-scaling tables.
func FormatWeakScaling(g *grid.Grid, rowsPerProc, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Weak scaling: %d rows/process, N = %d ==\n", rowsPerProc, n)
	for _, algo := range []Algorithm{TSQR, ScaLAPACK} {
		fmt.Fprintf(&b, "\n-- %s --\n%8s %12s %10s %12s\n", algo, "sites", "M", "Gflop/s", "efficiency")
		for _, r := range WeakScaling(g, algo, rowsPerProc, n) {
			fmt.Fprintf(&b, "%8d %12d %10.1f %11.0f%%\n", r.Sites, r.M, r.Gflops, 100*r.Efficiency)
		}
	}
	return b.String()
}
