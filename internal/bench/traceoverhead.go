package bench

import (
	"fmt"
	"math"
	"time"

	"gridqr/internal/core"
	"gridqr/internal/grid"
	"gridqr/internal/mpi"
	"gridqr/internal/scalapack"
	"gridqr/internal/telemetry"
)

// Tracing-overhead study: the always-on ring collector is only viable
// in a serving process if recording costs next to nothing, so this runs
// the standard TSQR benchmark point twice — untraced and ring-traced —
// and reports the wall-clock delta alongside the collector's span
// accounting. The span counts are deterministic consequences of the
// algorithm's communication structure and are gated exactly; the
// overhead percentage measures the host and is gated only by a loose
// cap (the acceptance target is ≤5%, the CI cap is wider for noise).

// TraceOverheadM/N/Capacity/Head pin the measured configuration.
// Rounds repeats the factorization inside one world so each rank
// records hundreds of spans: a single TSQR reduction writes only a
// handful per rank and finishes in milliseconds, where timer noise
// would swamp the tracing cost being measured.
const (
	TraceOverheadM        = 1 << 20
	TraceOverheadN        = 64
	TraceOverheadRounds   = 96
	TraceOverheadReps     = 4
	TraceOverheadCapacity = 256
	TraceOverheadHead     = 32
)

// TraceOverheadRun records the traced-vs-untraced comparison.
type TraceOverheadRun struct {
	M     int `json:"m"`
	N     int `json:"n"`
	Procs int `json:"procs"`

	// Host wall-clock (best of 3), informational.
	UntracedSeconds float64 `json:"untraced_wall_seconds"`
	RingSeconds     float64 `json:"ring_wall_seconds"`
	// OverheadPct = (ring - untraced) / untraced × 100; may be slightly
	// negative under timer noise.
	OverheadPct float64 `json:"overhead_pct"`

	// Deterministic collector accounting (gated exactly).
	SpansSeen     int64 `json:"spans_seen"`
	SpansRetained int64 `json:"spans_retained"`
	RetainedBound int64 `json:"retained_bound"`
}

// TraceOverheadStudy measures ring-collector overhead on the full
// platform's TSQR benchmark point.
func TraceOverheadStudy(g *grid.Grid) TraceOverheadRun {
	cfg := telemetry.RingConfig{Capacity: TraceOverheadCapacity, Head: TraceOverheadHead}
	offsets := scalapack.BlockOffsets(TraceOverheadM, g.Procs())
	measure := func(ring bool) (float64, telemetry.RingStats) {
		opts := []mpi.Option{mpi.CostOnly()}
		if ring {
			opts = append(opts, mpi.TracedRing(cfg))
		}
		w := mpi.NewWorld(g, opts...)
		t0 := time.Now()
		w.Run(func(ctx *mpi.Ctx) {
			for round := 0; round < TraceOverheadRounds; round++ {
				core.Factorize(mpi.WorldComm(ctx),
					core.Input{M: TraceOverheadM, N: TraceOverheadN, Offsets: offsets},
					core.Config{Tree: core.TreeGrid})
			}
		})
		return time.Since(t0).Seconds(), w.TraceStats()
	}
	// Interleave untraced and ring-traced reps and keep the best of each,
	// so slow drift in the host (thermal, co-tenants) hits both sides
	// alike instead of biasing whichever ran second.
	base, traced := math.Inf(1), math.Inf(1)
	var stats telemetry.RingStats
	for rep := 0; rep < TraceOverheadReps; rep++ {
		if el, _ := measure(false); el < base {
			base = el
		}
		el, s := measure(true)
		if el < traced {
			traced = el
		}
		stats = s
	}
	return TraceOverheadRun{
		M: TraceOverheadM, N: TraceOverheadN, Procs: g.Procs(),
		UntracedSeconds: base,
		RingSeconds:     traced,
		OverheadPct:     (traced - base) / base * 100,
		SpansSeen:       stats.Seen,
		SpansRetained:   stats.Retained,
		RetainedBound:   int64(g.Procs()) * int64(TraceOverheadCapacity+TraceOverheadHead),
	}
}

// FormatTraceOverhead renders the study for the -serve console output.
func FormatTraceOverhead(r TraceOverheadRun) string {
	return fmt.Sprintf(
		"== Ring-tracing overhead: TSQR M=%d N=%d on %d ranks ==\n"+
			"untraced %.3fs, ring-traced %.3fs: overhead %+.2f%% (target <= 5%%)\n"+
			"spans: %d seen, %d retained (bound %d, %.1f%% of stream)\n",
		r.M, r.N, r.Procs, r.UntracedSeconds, r.RingSeconds, r.OverheadPct,
		r.SpansSeen, r.SpansRetained, r.RetainedBound,
		100*float64(r.SpansRetained)/math.Max(1, float64(r.SpansSeen)))
}
