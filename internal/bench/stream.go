package bench

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"time"

	"gridqr/internal/grid"
	"gridqr/internal/sched"
	"gridqr/internal/telemetry"
)

// Open-loop streaming ingest study: a fixed-interval arrival process
// ingests row-blocks into one long-lived stream — never waiting for the
// folds — while snapshot barriers fire every SnapshotEvery blocks from
// their own goroutines. Ingest-side latency (fold, snapshot barrier) is
// read back from the server's SLO histograms.
//
// Determinism contract for the perf gate: folds move no messages (each
// rank rematerializes its strided row shard from the seed), so a
// snapshot round's traffic is exactly the barrier's p-1 messages
// (perfmodel.StreamSnapshotExact) no matter how many folds share the
// round or how ingest interleaves with the barrier on the host. Block
// and snapshot counts come from the fixed schedule; Lost must be zero —
// the stream never silently drops an accepted block. Fold/snapshot
// latency and throughput are host-dependent and never gated.

// Standard ingest-rate ladder (blocks/s) for the committed report.
var StandardStreamRates = []float64{250, 1000, 4000}

// StreamBlocksPerPoint is the blocks ingested per rate point of the
// standard sweep; with StreamSnapshotEvery this fixes the snapshot
// count at 8 per point.
const (
	StreamBlocksPerPoint = 240
	StreamSnapshotEvery  = 30
	// StreamBlockRows is the ingest granularity of the standard sweep.
	StreamBlockRows = 256
)

// StreamRun is one ingest-rate point of the streaming study.
type StreamRun struct {
	RatePerS float64 `json:"rate_per_s"`
	// Blocks and Snapshots come from the fixed schedule — deterministic,
	// gated. Procs pins the serving partition size the stream folded on.
	Blocks    int `json:"blocks"`
	Snapshots int `json:"snapshots"`
	Procs     int `json:"procs"`

	// Lost counts accepted blocks that were never folded and must be
	// zero. The rest of the stream accounting is informational.
	Lost    int `json:"lost"`
	Shed    int `json:"shed"`
	Rounds  int `json:"rounds"`
	Retries int `json:"retries"`

	// Wall-clock ingest performance (host-dependent, never gated).
	ThroughputBPS float64 `json:"throughput_blocks_per_s"`
	FoldP50       float64 `json:"fold_p50_seconds"`
	FoldP99       float64 `json:"fold_p99_seconds"`
	SnapP50       float64 `json:"snapshot_p50_seconds"`
	SnapP99       float64 `json:"snapshot_p99_seconds"`

	// Deterministic per-snapshot traffic (gated): exactly the reduction
	// tree over the partition's running R's.
	MsgsPerSnapshot          int64   `json:"msgs_per_snapshot"`
	InterSiteMsgsPerSnapshot int64   `json:"inter_site_msgs_per_snapshot"`
	BytesPerSnapshot         float64 `json:"bytes_per_snapshot"`
}

// StreamOptions configures the streaming study; the zero value
// reproduces the committed benchmark.
type StreamOptions struct {
	// Logger receives per-round lifecycle records. Nil means silent.
	Logger *slog.Logger
	// OnPoint fires when a rate point's server starts serving.
	OnPoint func(srv *sched.Server, reg *telemetry.Registry)
	// SnapshotEvery fires a snapshot barrier after every this many
	// ingested blocks (default StreamSnapshotEvery).
	SnapshotEvery int
	// BlockRows is the rows per ingested block (default StreamBlockRows).
	BlockRows int
	// DrainTimeout bounds the post-ingest wait for outstanding snapshots
	// and the final drain (default 30s).
	DrainTimeout time.Duration
}

// StreamStudy runs the open-loop ingest sweep: for each offered rate, a
// fresh cost-only server hosts one stream; blocks arrive on a fixed
// clock and snapshots fire on schedule without pausing ingest.
// Canceling ctx stops the arrival process; already-accepted blocks are
// drained (bounded by DrainTimeout) and the rows finished so far are
// returned with ctx's error.
func StreamStudy(ctx context.Context, g *grid.Grid, rates []float64, blocks int,
	opts StreamOptions) ([]StreamRun, error) {
	if opts.SnapshotEvery <= 0 {
		opts.SnapshotEvery = StreamSnapshotEvery
	}
	if opts.BlockRows <= 0 {
		opts.BlockRows = StreamBlockRows
	}
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = 30 * time.Second
	}
	var out []StreamRun
	for _, rate := range rates {
		row, err := streamOnePoint(ctx, g, rate, blocks, opts)
		if err != nil {
			return out, err
		}
		out = append(out, row)
		if ctx.Err() != nil {
			return out, ctx.Err()
		}
	}
	return out, nil
}

func streamOnePoint(ctx context.Context, g *grid.Grid, rate float64, blocks int,
	opts StreamOptions) (StreamRun, error) {
	plan := servePlan(g)
	reg := telemetry.NewRegistry()
	srv := sched.Start(sched.Config{
		Grid:     g,
		Plan:     plan,
		CostOnly: true,
		Registry: reg,
		Logger:   opts.Logger,
	})
	defer srv.Close()
	if opts.OnPoint != nil {
		opts.OnPoint(srv, reg)
	}

	sj, err := srv.SubmitStream(sched.JobSpec{
		N: ServeN, BlockRows: opts.BlockRows, Seed: 7,
	})
	if err != nil {
		return StreamRun{}, fmt.Errorf("bench: open stream: %w", err)
	}
	row := StreamRun{RatePerS: rate, Procs: len(plan.Groups[0])}

	// Open loop: blocks arrive on their own clock; snapshot barriers run
	// from goroutines so a slow barrier never stalls ingest.
	gap := time.Duration(float64(time.Second) / rate)
	var (
		wg      sync.WaitGroup
		snapMu  sync.Mutex
		snaps   []*sched.StreamSnapshot
		snapErr error
	)
	start := time.Now()
	for b := 0; b < blocks && ctx.Err() == nil; b++ {
		time.Sleep(gap)
		if err := sj.Ingest(1); err != nil {
			return row, fmt.Errorf("bench: ingest block %d: %w", b, err)
		}
		row.Blocks++
		if row.Blocks%opts.SnapshotEvery == 0 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				snap, err := sj.Snapshot()
				snapMu.Lock()
				defer snapMu.Unlock()
				if err != nil {
					snapErr = err
					return
				}
				snaps = append(snaps, snap)
			}()
		}
	}

	// Drain discipline: every scheduled snapshot is waited out and the
	// stream closes only once every accepted block folded, so Lost really
	// measures the server.
	done := make(chan struct{})
	go func() { wg.Wait(); sj.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(opts.DrainTimeout):
		return row, fmt.Errorf("%w (ingest rate %g/s)", ErrDrainTimeout, rate)
	}
	if snapErr != nil {
		return row, fmt.Errorf("bench: snapshot barrier: %w", snapErr)
	}
	elapsed := time.Since(start)

	st := sj.Stats()
	row.Lost = st.Lost
	row.Shed = st.Shed
	row.Rounds = st.Rounds
	row.Retries = st.Retries
	row.Snapshots = len(snaps)
	var msgs, inter int64
	var bytes float64
	for _, snap := range snaps {
		msgs += snap.Counters.Total().Msgs
		bytes += snap.Counters.Total().Bytes
		inter += snap.Counters.Inter().Msgs
	}
	if row.Snapshots > 0 {
		row.MsgsPerSnapshot = msgs / int64(row.Snapshots)
		row.InterSiteMsgsPerSnapshot = inter / int64(row.Snapshots)
		row.BytesPerSnapshot = bytes / float64(row.Snapshots)
	}
	slo := srv.SLO()
	row.ThroughputBPS = float64(st.Folded) / elapsed.Seconds()
	row.FoldP50 = slo.StreamFold.P50
	row.FoldP99 = slo.StreamFold.P99
	row.SnapP50 = slo.StreamSnapshot.P50
	row.SnapP99 = slo.StreamSnapshot.P99
	return row, nil
}

// BuildStreamRuns executes the standard ingest sweep for the committed
// report.
func BuildStreamRuns(g *grid.Grid) []StreamRun {
	rows, err := StreamStudy(context.Background(), g, StandardStreamRates,
		StreamBlocksPerPoint, StreamOptions{})
	if err != nil {
		panic(err)
	}
	return rows
}

// FormatStream renders the streaming study as the ingest-rate vs
// snapshot-latency table the experiments document quotes.
func FormatStream(g *grid.Grid, rows []StreamRun) string {
	var b strings.Builder
	plan := servePlan(g)
	fmt.Fprintf(&b, "== Open-loop streaming ingest: incremental TSQR (N=%d, %d rows/block, partition of %d ranks) ==\n",
		ServeN, StreamBlockRows, len(plan.Groups[0]))
	fmt.Fprintf(&b, "%8s %7s %6s %5s %5s %9s %11s %11s %11s %11s %10s %10s\n",
		"rate/s", "blocks", "snaps", "shed", "lost", "blocks/s",
		"fold p50", "fold p99", "snap p50", "snap p99", "msgs/snap", "inter/snap")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8.0f %7d %6d %5d %5d %9.1f %11.2g %11.2g %11.2g %11.2g %10d %10d\n",
			r.RatePerS, r.Blocks, r.Snapshots, r.Shed, r.Lost, r.ThroughputBPS,
			r.FoldP50, r.FoldP99, r.SnapP50, r.SnapP99,
			r.MsgsPerSnapshot, r.InterSiteMsgsPerSnapshot)
	}
	return b.String()
}
