package bench

import (
	"fmt"

	"gridqr/internal/core"
	"gridqr/internal/grid"
)

// The paper's experimental parameter space (Section V).
var (
	// PanelNs are the matrix widths, one panel per figure.
	PanelNs = []int{64, 128, 256, 512}
	// SiteConfigs are the 1-, 2- and 4-site runs of Figures 4 and 5.
	SiteConfigs = []int{1, 2, 4}
	// DomainSweep is the domains-per-cluster axis of Figures 6 and 7.
	DomainSweep = []int{1, 2, 4, 8, 16, 32, 64}
	// BestDomainCandidates is the subset of DomainSweep the "best
	// configuration" search of Figures 5 and 8 optimizes over.
	BestDomainCandidates = []int{1, 8, 32, 64}
)

// MSweep returns the paper's row-count axis for a given N: powers of two
// from 2^17 (131,072) up to 2^25 (33.5M) for skinny panels, 2^23 (8.4M)
// for the wider ones — the paper's 16 GB memory bound.
func MSweep(n int) []int {
	maxPow := 25
	if n > 128 {
		maxPow = 23
	}
	var ms []int
	for p := 17; p <= maxPow; p++ {
		ms = append(ms, 1<<p)
	}
	return ms
}

// Figure4 reproduces "ScaLAPACK performance": Gflop/s vs M for each N,
// one series per site count.
func Figure4(g *grid.Grid) Figure {
	f := Figure{Name: "Figure 4", Title: "ScaLAPACK performance (PDGEQRF, NB=64, NX=128)"}
	for _, n := range PanelNs {
		panel := Panel{Title: fmt.Sprintf("N = %d", n), XLabel: "M"}
		for _, sites := range SiteConfigs {
			s := Series{Label: fmt.Sprintf("%d site(s)", sites)}
			for _, m := range MSweep(n) {
				meas := Execute(Run{Grid: g, Sites: sites, M: m, N: n, Algo: ScaLAPACK})
				s.Points = append(s.Points, Point{X: float64(m), Gflops: meas.Gflops, Model: meas.ModelGflops})
			}
			panel.Series = append(panel.Series, s)
		}
		f.Panels = append(f.Panels, panel)
	}
	return f
}

// Figure5 reproduces "TSQR performance": Gflop/s vs M for each N with the
// optimum number of domains per cluster, one series per site count.
func Figure5(g *grid.Grid) Figure {
	f := Figure{Name: "Figure 5", Title: "QCG-TSQR performance (grid-tuned tree, best #domains)"}
	for _, n := range PanelNs {
		panel := Panel{Title: fmt.Sprintf("N = %d", n), XLabel: "M"}
		for _, sites := range SiteConfigs {
			s := Series{Label: fmt.Sprintf("%d site(s)", sites)}
			for _, m := range MSweep(n) {
				best, bestModel := bestTSQR(g, sites, m, n)
				s.Points = append(s.Points, Point{X: float64(m), Gflops: best, Model: bestModel})
			}
			panel.Series = append(panel.Series, s)
		}
		f.Panels = append(f.Panels, panel)
	}
	return f
}

// bestTSQR returns the best measured and model Gflop/s over the domain
// candidates, the paper's per-point tuning.
func bestTSQR(g *grid.Grid, sites, m, n int) (meas, model float64) {
	for _, d := range BestDomainCandidates {
		r := Execute(Run{Grid: g, Sites: sites, M: m, N: n, Algo: TSQR,
			DomainsPerCluster: d, Tree: core.TreeGrid})
		if r.Gflops > meas {
			meas = r.Gflops
		}
		if r.ModelGflops > model {
			model = r.ModelGflops
		}
	}
	return meas, model
}

// figure6Ms gives, per N, the row counts of the Figure 6 series.
func figure6Ms(n int) []int {
	switch n {
	case 64:
		return []int{33554432, 4194304, 524288, 131072}
	case 128:
		return []int{33554432, 4194304, 524288, 262144}
	default:
		return []int{8388608, 2097152, 524288, 262144}
	}
}

// Figure6 reproduces "effect of the number of domains per cluster on
// TSQR executed on all four sites": Gflop/s vs domains/cluster, one
// series per M.
func Figure6(g *grid.Grid) Figure {
	f := Figure{Name: "Figure 6", Title: "Effect of #domains per cluster (TSQR, 4 sites)"}
	for _, n := range PanelNs {
		panel := Panel{Title: fmt.Sprintf("N = %d", n), XLabel: "domains/cluster"}
		for _, m := range figure6Ms(n) {
			s := Series{Label: fmt.Sprintf("M = %d", m)}
			for _, d := range DomainSweep {
				meas := Execute(Run{Grid: g, Sites: 4, M: m, N: n, Algo: TSQR,
					DomainsPerCluster: d, Tree: core.TreeGrid})
				s.Points = append(s.Points, Point{X: float64(d), Gflops: meas.Gflops, Model: meas.ModelGflops})
			}
			panel.Series = append(panel.Series, s)
		}
		f.Panels = append(f.Panels, panel)
	}
	return f
}

// figure7Ms gives the Figure 7 series row counts.
func figure7Ms(n int) []int {
	if n == 64 {
		return []int{8388608, 1048576, 131072, 65536}
	}
	return []int{2097152, 1048576, 131072, 65536}
}

// Figure7 reproduces "effect of the number of domains on TSQR executed on
// a single site", panels N = 64 and N = 512.
func Figure7(g *grid.Grid) Figure {
	f := Figure{Name: "Figure 7", Title: "Effect of #domains (TSQR, single site)"}
	for _, n := range []int{64, 512} {
		panel := Panel{Title: fmt.Sprintf("N = %d", n), XLabel: "domains"}
		for _, m := range figure7Ms(n) {
			s := Series{Label: fmt.Sprintf("M = %d", m)}
			for _, d := range DomainSweep {
				meas := Execute(Run{Grid: g, Sites: 1, M: m, N: n, Algo: TSQR,
					DomainsPerCluster: d, Tree: core.TreeGrid})
				s.Points = append(s.Points, Point{X: float64(d), Gflops: meas.Gflops, Model: meas.ModelGflops})
			}
			panel.Series = append(panel.Series, s)
		}
		f.Panels = append(f.Panels, panel)
	}
	return f
}

// Figure8 reproduces "TSQR vs ScaLAPACK": for each algorithm the best
// configuration over 1/2/4 sites (the convex hull of Figures 4 and 5).
// Precomputed Figure4/Figure5 results may be passed to avoid re-running
// the sweeps; pass nil to compute from scratch.
func Figure8(g *grid.Grid, fig4, fig5 *Figure) Figure {
	if fig4 == nil {
		f := Figure4(g)
		fig4 = &f
	}
	if fig5 == nil {
		f := Figure5(g)
		fig5 = &f
	}
	f := Figure{Name: "Figure 8", Title: "QCG-TSQR (best) vs ScaLAPACK (best)"}
	for pi, n := range PanelNs {
		panel := Panel{Title: fmt.Sprintf("N = %d", n), XLabel: "M"}
		panel.Series = []Series{
			hull("TSQR (best)", fig5.Panels[pi].Series),
			hull("ScaLAPACK (best)", fig4.Panels[pi].Series),
		}
		f.Panels = append(f.Panels, panel)
	}
	return f
}

// hull takes, pointwise, the best Gflop/s across a panel's site series.
func hull(label string, series []Series) Series {
	out := Series{Label: label}
	for i := range series[0].Points {
		best := Point{X: series[0].Points[i].X}
		for _, s := range series {
			if p := s.Points[i]; p.Gflops > best.Gflops {
				best.Gflops = p.Gflops
				best.Model = p.Model
			}
		}
		out.Points = append(out.Points, best)
	}
	return out
}
