package bench

import (
	"strings"
	"testing"

	"gridqr/internal/grid"
	"gridqr/internal/mpi"
)

// TestSectionVEBreakdown reproduces the paper's Section V-E observation:
// the communication share of the factorization time shrinks as M grows,
// for both algorithms, and inter-cluster waiting dominates ScaLAPACK's
// time on the grid.
func TestSectionVEBreakdown(t *testing.T) {
	g := grid.Grid5000()
	rows := TimeBreakdownSweep(g, 64, []int{1 << 17, 1 << 21, 1 << 25})
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	tsqr, sl := rows[:3], rows[3:]
	// Communication share strictly decreasing with M for both.
	for name, rs := range map[string][]BreakdownRow{"TSQR": tsqr, "ScaLAPACK": sl} {
		for i := 1; i < len(rs); i++ {
			if rs[i].CommShare() >= rs[i-1].CommShare() {
				t.Fatalf("%s: comm share not decreasing at M=%d: %g >= %g",
					name, rs[i].M, rs[i].CommShare(), rs[i-1].CommShare())
			}
		}
	}
	// TSQR at the top of the sweep is compute-bound (>95%).
	if tsqr[2].ComputeFrac < 0.95 {
		t.Fatalf("TSQR at M=2^25 compute fraction %g, want > 0.95", tsqr[2].ComputeFrac)
	}
	// ScaLAPACK on the grid is dominated by inter-cluster waiting for
	// small and moderate M.
	if sl[0].InterCluster < 0.5 {
		t.Fatalf("ScaLAPACK at M=2^17: inter-cluster share %g, want dominant", sl[0].InterCluster)
	}
	// Fractions are a sane partition of time.
	for _, r := range rows {
		sum := r.ComputeFrac + r.CommShare()
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("fractions sum to %g at M=%d", sum, r.M)
		}
	}
}

func TestFormatBreakdown(t *testing.T) {
	g := grid.SmallTestGrid(2, 2, 1)
	rows := TimeBreakdownSweep(g, 8, []int{1 << 10})
	out := FormatBreakdown(8, rows)
	for _, want := range []string{"TSQR", "ScaLAPACK", "inter-clstr", "%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWeakScaling(t *testing.T) {
	g := grid.Grid5000()
	tsqr := WeakScaling(g, TSQR, 1<<17, 64)
	if len(tsqr) != 4 {
		t.Fatalf("rows = %d", len(tsqr))
	}
	// TSQR weak-scales: efficiency stays high at 4 sites.
	if e := tsqr[3].Efficiency; e < 0.85 {
		t.Fatalf("TSQR weak-scaling efficiency at 4 sites = %g, want > 0.85", e)
	}
	// ScaLAPACK's collapses (per-column wide-area reductions).
	sl := WeakScaling(g, ScaLAPACK, 1<<17, 64)
	if sl[3].Efficiency >= tsqr[3].Efficiency/2 {
		t.Fatalf("ScaLAPACK weak efficiency %g should be far below TSQR's %g",
			sl[3].Efficiency, tsqr[3].Efficiency)
	}
	// Total rows must grow with the machine.
	if tsqr[3].M != 4*tsqr[0].M {
		t.Fatalf("M did not grow with sites: %v", tsqr)
	}
}

func TestFormatWeakScaling(t *testing.T) {
	out := FormatWeakScaling(grid.SmallTestGrid(2, 2, 1), 1<<12, 8)
	for _, want := range []string{"Weak scaling", "TSQR", "ScaLAPACK", "efficiency"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestStragglerStudy(t *testing.T) {
	g := grid.Grid5000()
	rows := StragglerStudy(g, 1<<22, 64, []float64{2, 8})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Both synchronous algorithms are hostage to the straggler, but
		// inflation must stay bounded by the slowdown itself and must
		// increase with it.
		if r.TSQRInfl < 1 || r.TSQRInfl > r.Factor+0.5 {
			t.Fatalf("TSQR inflation %g out of range for factor %g", r.TSQRInfl, r.Factor)
		}
		if r.SLInfl < 1 || r.SLInfl > r.Factor+0.5 {
			t.Fatalf("ScaLAPACK inflation %g out of range for factor %g", r.SLInfl, r.Factor)
		}
	}
	if rows[1].TSQRInfl <= rows[0].TSQRInfl {
		t.Fatal("inflation must grow with the slowdown")
	}
	// ScaLAPACK's grid runs are latency-bound, so a compute straggler
	// hurts it relatively less than compute-bound TSQR — the flip side
	// of its poor baseline.
	if rows[1].SLInfl > rows[1].TSQRInfl {
		t.Fatalf("unexpected ordering: SL %g vs TSQR %g", rows[1].SLInfl, rows[1].TSQRInfl)
	}
}

func TestSlowdownOption(t *testing.T) {
	g := grid.SmallTestGrid(1, 2, 1)
	run := func(opts ...mpi.Option) float64 {
		w := mpi.NewWorld(g, append([]mpi.Option{mpi.CostOnly()}, opts...)...)
		w.Run(func(ctx *mpi.Ctx) {
			ctx.Charge(1e9, 64)
		})
		return w.MaxClock()
	}
	base := run()
	slowed := run(mpi.Slowdown(1, 3))
	if r := slowed / base; r < 2.9 || r > 3.1 {
		t.Fatalf("slowdown ratio %g want 3", r)
	}
}

func TestCheckModel(t *testing.T) {
	if testing.Short() {
		t.Skip("model sweep skipped in -short mode")
	}
	rows := CheckModel(grid.Grid5000())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Points != 18 {
			t.Fatalf("%v: points = %d want 18", r.Algo, r.Points)
		}
		// The model's purpose is trend forecasting; it should track the
		// simulator within tens of percent on average.
		if r.MeanErr > 0.5 {
			t.Fatalf("%v: mean model error %.0f%% too large", r.Algo, 100*r.MeanErr)
		}
	}
	out := FormatModelCheck(rows)
	if !strings.Contains(out, "mean err") {
		t.Fatalf("bad render:\n%s", out)
	}
}

func TestCrossoverM(t *testing.T) {
	g := grid.Grid5000()
	// ScaLAPACK's multi-site crossover: the paper reports M ≈ 5·10⁶–10⁷
	// (single site optimal below, grid wins above). Our simulation puts
	// it in the same decade.
	m, ok := CrossoverM(g, ScaLAPACK, 64, 1<<17, 1<<26)
	if !ok {
		t.Fatal("no ScaLAPACK crossover found in range")
	}
	if m < 4_000_000 || m > 30_000_000 {
		t.Fatalf("ScaLAPACK crossover M = %d outside the paper's decade", m)
	}
	// TSQR crosses over far earlier (paper: M ≥ 5·10⁵ already favors
	// all four sites).
	mt, ok := CrossoverM(g, TSQR, 64, 1<<14, 1<<22)
	if !ok {
		t.Fatal("no TSQR crossover found in range")
	}
	if mt >= m/8 {
		t.Fatalf("TSQR crossover %d not far below ScaLAPACK's %d", mt, m)
	}
}
