package bench

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"gridqr/internal/core"
	"gridqr/internal/grid"
	"gridqr/internal/telemetry"
)

// TestTracedTwoSiteTSQR pins the PR's acceptance criteria on a real
// benchmark point: a 2-site TSQR run must show exactly log₂(2) = 1
// inter-site message, its critical-path decomposition must sum to the
// total simulated runtime within 1%, and the exported Chrome trace must
// be loadable JSON.
func TestTracedTwoSiteTSQR(t *testing.T) {
	g := grid.Grid5000()
	m := Execute(Run{Grid: g, Sites: 2, M: 1 << 20, N: 64,
		Algo: TSQR, Tree: core.TreeGrid, Traced: true})

	if m.Trace == nil || m.CriticalPath == nil || m.CommMatrix == nil || m.Registry == nil {
		t.Fatal("traced run missing telemetry products")
	}
	if msgs, _ := m.CommMatrix.InterSite(); msgs != 1 {
		t.Errorf("2-site TSQR inter-site messages = %d, want 1 (= log₂ sites)", msgs)
	}
	if got := m.Registry.Counter("mpi.msgs." + grid.InterCluster.String()).Value(); got != 1 {
		t.Errorf("metrics inter-site count = %g, want 1", got)
	}
	cp := m.CriticalPath
	if cp.Total != m.Seconds {
		t.Errorf("critical-path total %g != simulated time %g", cp.Total, m.Seconds)
	}
	if diff := math.Abs(cp.Sum() - cp.Total); diff > 0.01*cp.Total {
		t.Errorf("compute+comm+idle = %g vs total %g (off by %g, > 1%%)", cp.Sum(), cp.Total, diff)
	}
	if cp.InterSiteMsgs != 1 {
		t.Errorf("critical path crosses %d inter-site messages, want 1", cp.InterSiteMsgs)
	}

	var buf bytes.Buffer
	if err := telemetry.WriteChromeTrace(&buf, m.Trace); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("exported trace has no events")
	}
}

// TestReportJSONRoundTrip checks the -json report is stable, complete
// and parseable.
func TestReportJSONRoundTrip(t *testing.T) {
	g := grid.SmallTestGrid(2, 4, 1)
	rep := BuildReport("test", []Run{
		{Grid: g, Sites: 2, M: 1 << 16, N: 16, Algo: TSQR, Tree: core.TreeGrid},
		{Grid: g, Sites: 2, M: 1 << 16, N: 16, Algo: ScaLAPACK},
	})
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if len(back.Runs) != 2 || back.Platform != "test" {
		t.Fatalf("round-trip lost data: %+v", back)
	}
	for _, r := range back.Runs {
		if r.Seconds <= 0 || r.Gflops <= 0 || r.Msgs <= 0 {
			t.Errorf("run %s missing measurements: %+v", r.Algo, r)
		}
		if r.CriticalPath == nil {
			t.Errorf("run %s missing critical path", r.Algo)
		} else if len(r.CriticalPath.Steps) != 0 {
			t.Errorf("committed report should omit path steps")
		}
	}
	// TSQR's message total must be far below ScaLAPACK's (Table I).
	if back.Runs[0].Msgs*10 > back.Runs[1].Msgs {
		t.Errorf("TSQR msgs %d not ≪ ScaLAPACK msgs %d", back.Runs[0].Msgs, back.Runs[1].Msgs)
	}
}
