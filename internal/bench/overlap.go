package bench

import (
	"fmt"
	"strings"

	"gridqr/internal/core"
	"gridqr/internal/grid"
)

// OverlapRow compares a blocking algorithm variant against its
// compute/communication-overlap twin at one experiment point. The wait
// columns come from the measured telemetry critical path, not the model:
// every run is traced and the inter-site and total wait shares are read
// off the critical-path decomposition.
type OverlapRow struct {
	Algo          Algorithm
	Overlap       bool
	Seconds       float64
	Gflops        float64
	InterSiteWait float64 // critical-path wait on inter-site links (s)
	TotalWait     float64 // critical-path comm wait + idle (s)
	InterMsgs     int64
	TotalMsgs     int64
}

// OverlapStudy runs the overlap ablation on the full grid: TSQR with the
// blocking grid-tuned tree vs the posted-receive flat-cross-site variant
// at (mTSQR, nTSQR), and blocking PDGEQRF vs lookahead PDGEQRF at
// (mQRF, nQRF) with NB = NX = nb so real block updates occur. The
// overlap variants move no extra data — the msgs columns confirm the
// traffic is identical — so any win is pure wait hiding.
func OverlapStudy(g *grid.Grid, mTSQR, nTSQR, mQRF, nQRF, nb int) []OverlapRow {
	var rows []OverlapRow
	point := func(r Run) {
		r.Traced = true
		meas := Execute(r)
		rows = append(rows, OverlapRow{
			Algo:          r.Algo,
			Overlap:       r.Overlap,
			Seconds:       meas.Seconds,
			Gflops:        meas.Gflops,
			InterSiteWait: meas.CriticalPath.InterSite,
			TotalWait:     meas.CriticalPath.Comm() + meas.CriticalPath.Idle,
			InterMsgs:     meas.Counters.Inter().Msgs,
			TotalMsgs:     meas.Counters.Total().Msgs,
		})
	}
	sites := len(g.Clusters)
	for _, overlap := range []bool{false, true} {
		point(Run{Grid: g, Sites: sites, M: mTSQR, N: nTSQR, Algo: TSQR,
			Tree: core.TreeGrid, Overlap: overlap})
	}
	for _, overlap := range []bool{false, true} {
		point(Run{Grid: g, Sites: sites, M: mQRF, N: nQRF, Algo: ScaLAPACK,
			NB: nb, NX: nb, Overlap: overlap})
	}
	return rows
}

// FormatOverlap renders the study as a text table.
func FormatOverlap(mTSQR, nTSQR, mQRF, nQRF, nb int, rows []OverlapRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Overlap ablation: TSQR M=%d N=%d; PDGEQRF M=%d N=%d NB=NX=%d; all sites ==\n",
		mTSQR, nTSQR, mQRF, nQRF, nb)
	fmt.Fprintf(&b, "%-22s %10s %10s %16s %14s %11s %11s\n",
		"variant", "time (s)", "Gflop/s", "inter wait (s)", "tot wait (s)", "inter msgs", "total msgs")
	for _, r := range rows {
		name := r.Algo.String()
		if r.Overlap {
			if r.Algo == TSQR {
				name += " overlapped"
			} else {
				name += " lookahead"
			}
		} else {
			name += " blocking"
		}
		fmt.Fprintf(&b, "%-22s %10.4f %10.1f %16.6f %14.6f %11d %11d\n",
			name, r.Seconds, r.Gflops, r.InterSiteWait, r.TotalWait, r.InterMsgs, r.TotalMsgs)
	}
	return b.String()
}
