package bench

import (
	"fmt"
	"strings"

	"gridqr/internal/core"
	"gridqr/internal/grid"
)

// BreakdownRow is one line of the Section V-E analysis: where the
// critical rank's time goes for one matrix height.
type BreakdownRow struct {
	M            int
	Algo         Algorithm
	Seconds      float64
	ComputeFrac  float64
	IntraNode    float64 // fractions of total time
	IntraCluster float64
	InterCluster float64
}

// CommShare returns the fraction of time spent waiting on any network.
func (r BreakdownRow) CommShare() float64 {
	return r.IntraNode + r.IntraCluster + r.InterCluster
}

// TimeBreakdownSweep reproduces the paper's Section V-E observation:
// "the time spent in intra-node, then intra-cluster and finally
// inter-cluster communications becomes negligible while the dimensions of
// the matrices increase". It runs both algorithms on all four sites over
// a height sweep and reports the critical rank's time split.
func TimeBreakdownSweep(g *grid.Grid, n int, ms []int) []BreakdownRow {
	var rows []BreakdownRow
	for _, algo := range []Algorithm{TSQR, ScaLAPACK} {
		for _, m := range ms {
			r := Run{Grid: g, Sites: len(g.Clusters), M: m, N: n, Algo: algo, Tree: core.TreeGrid}
			if algo == TSQR {
				r.DomainsPerCluster = 64
				if g.Clusters[0].Procs() < 64 {
					r.DomainsPerCluster = 0
				}
			}
			meas := Execute(r)
			// Rank 0 sits at the root of every reduction, so its waits
			// reflect the delays of whole subtrees; waits are attributed
			// to the link class of the message that released the rank
			// (last-hop attribution). Fractions are of rank 0's own
			// virtual time.
			b := meas.Breakdown
			total := b.Total()
			rows = append(rows, BreakdownRow{
				M: m, Algo: algo, Seconds: meas.Seconds,
				ComputeFrac:  b.Compute / total,
				IntraNode:    b.Wait[grid.IntraNode] / total,
				IntraCluster: b.Wait[grid.IntraCluster] / total,
				InterCluster: b.Wait[grid.InterCluster] / total,
			})
		}
	}
	return rows
}

// FormatBreakdown renders the sweep as a text table.
func FormatBreakdown(n int, rows []BreakdownRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Time breakdown on all sites, N = %d (rank 0, last-hop wait attribution) ==\n", n)
	fmt.Fprintf(&b, "%-10s %12s %10s %10s %12s %12s %12s\n",
		"algorithm", "M", "time (s)", "compute", "intra-node", "intra-clstr", "inter-clstr")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %12d %10.3f %9.1f%% %11.1f%% %11.1f%% %11.1f%%\n",
			r.Algo, r.M, r.Seconds, 100*r.ComputeFrac,
			100*r.IntraNode, 100*r.IntraCluster, 100*r.InterCluster)
	}
	return b.String()
}
