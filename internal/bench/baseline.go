package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Baseline comparison: the CI perf gate re-runs the standard benchmark
// set and diffs it against the committed results/BENCH_*.json. The
// simulation is deterministic — message and flop counts follow exactly
// from the algorithms' communication structure — so counts must match
// exactly, and accumulated floats (bytes, flops, simulated seconds)
// within tight relative tolerances. Any drift means a code change
// altered the communication or computation structure and the baseline
// must be regenerated deliberately.

// Tolerances for CompareReports. Zero values select the defaults.
type Tolerances struct {
	RelBytes   float64 // relative tolerance on byte totals (default 1e-9)
	RelFlops   float64 // relative tolerance on flop totals (default 1e-9)
	RelSeconds float64 // relative tolerance on simulated seconds (default 1e-6)
	// MaxTraceOverheadPct caps the measured ring-tracing overhead
	// (default 10 — looser than the 5% acceptance target because CI
	// hosts are noisy; the measured value is recorded in the baseline).
	MaxTraceOverheadPct float64
	// ScaleMaxRanks skips baseline scale runs above this rank count
	// (0 = gate every recorded point). The PR gate sets 4096 so the
	// committed 32k points don't have to be re-run on every push; the
	// nightly job gates the full sweep.
	ScaleMaxRanks int
}

func (t Tolerances) withDefaults() Tolerances {
	if t.RelBytes == 0 {
		t.RelBytes = 1e-9
	}
	if t.RelFlops == 0 {
		t.RelFlops = 1e-9
	}
	if t.RelSeconds == 0 {
		t.RelSeconds = 1e-6
	}
	if t.MaxTraceOverheadPct == 0 {
		t.MaxTraceOverheadPct = 10
	}
	return t
}

// configKey identifies a run by its configuration, so reports can be
// matched even if run order or the set of runs changes between versions.
func configKey(r ReportRun) string {
	return fmt.Sprintf("%s/%s/sites=%d/m=%d/n=%d/d=%d/q=%t/nb=%d/nx=%d/overlap=%t",
		r.Algo, r.Tree, r.Sites, r.M, r.N, r.Domains, r.WantQ, r.NB, r.NX, r.Overlap)
}

// ReadReport parses a JSON report written by WriteJSON.
func ReadReport(r io.Reader) (Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return Report{}, fmt.Errorf("bench: bad baseline report: %w", err)
	}
	return rep, nil
}

// CompareReports diffs a freshly measured report against a committed
// baseline and returns one human-readable line per mismatch (empty means
// the gate passes). Baseline runs missing from the measured report are
// mismatches — a silently dropped benchmark must not pass the gate —
// while extra measured runs are allowed, so new benchmark points can be
// added before the baseline is regenerated.
func CompareReports(got, want Report, tol Tolerances) []string {
	tol = tol.withDefaults()
	byKey := make(map[string]ReportRun, len(got.Runs))
	for _, r := range got.Runs {
		byKey[configKey(r)] = r
	}
	var diffs []string
	relOff := func(a, b float64) float64 {
		return math.Abs(a-b) / math.Max(1, math.Abs(b))
	}
	for _, w := range want.Runs {
		key := configKey(w)
		g, ok := byKey[key]
		if !ok {
			diffs = append(diffs, fmt.Sprintf("%s: present in baseline but not measured", key))
			continue
		}
		if g.Msgs != w.Msgs {
			diffs = append(diffs, fmt.Sprintf("%s: msgs %d != baseline %d", key, g.Msgs, w.Msgs))
		}
		if g.InterSiteMsgs != w.InterSiteMsgs {
			diffs = append(diffs, fmt.Sprintf("%s: inter-site msgs %d != baseline %d",
				key, g.InterSiteMsgs, w.InterSiteMsgs))
		}
		if off := relOff(g.Bytes, w.Bytes); off > tol.RelBytes {
			diffs = append(diffs, fmt.Sprintf("%s: bytes %g vs baseline %g (rel %.2g > %.2g)",
				key, g.Bytes, w.Bytes, off, tol.RelBytes))
		}
		if off := relOff(g.Flops, w.Flops); off > tol.RelFlops {
			diffs = append(diffs, fmt.Sprintf("%s: flops %g vs baseline %g (rel %.2g > %.2g)",
				key, g.Flops, w.Flops, off, tol.RelFlops))
		}
		if off := relOff(g.Seconds, w.Seconds); off > tol.RelSeconds {
			diffs = append(diffs, fmt.Sprintf("%s: seconds %g vs baseline %g (rel %.2g > %.2g)",
				key, g.Seconds, w.Seconds, off, tol.RelSeconds))
		}
	}
	diffs = append(diffs, compareServing(got.Serving, want.Serving, tol, relOff)...)
	diffs = append(diffs, compareTraceOverhead(got.TraceOverhead, want.TraceOverhead, tol)...)
	diffs = append(diffs, compareScale(got.Scale, want.Scale, tol, relOff)...)
	diffs = append(diffs, compareLoad(got.Load, want.Load, tol, relOff)...)
	diffs = append(diffs, compareStream(got.Stream, want.Stream, tol, relOff)...)
	return diffs
}

// compareStream diffs the streaming study's deterministic fields: block
// and snapshot counts come from the fixed ingest schedule, Lost must be
// zero (an accepted block never silently disappears, under any
// fold/barrier interleaving the host produces), the partition size pins
// the sharding, and per-snapshot traffic is exactly the reduction tree
// over the partition's running R's. Fold/snapshot latency and throughput
// depend on host timing and are deliberately never gated.
func compareStream(got, want []StreamRun, tol Tolerances, relOff func(a, b float64) float64) []string {
	streamKey := func(r StreamRun) string {
		return fmt.Sprintf("stream/rate=%g", r.RatePerS)
	}
	byKey := make(map[string]StreamRun, len(got))
	for _, r := range got {
		byKey[streamKey(r)] = r
	}
	var diffs []string
	for _, w := range want {
		key := streamKey(w)
		g, ok := byKey[key]
		if !ok {
			diffs = append(diffs, fmt.Sprintf("%s: present in baseline but not measured", key))
			continue
		}
		if g.Blocks != w.Blocks {
			diffs = append(diffs, fmt.Sprintf("%s: blocks %d != baseline %d", key, g.Blocks, w.Blocks))
		}
		if g.Snapshots != w.Snapshots {
			diffs = append(diffs, fmt.Sprintf("%s: snapshots %d != baseline %d",
				key, g.Snapshots, w.Snapshots))
		}
		if g.Procs != w.Procs {
			diffs = append(diffs, fmt.Sprintf("%s: partition size %d != baseline %d",
				key, g.Procs, w.Procs))
		}
		if g.Lost != 0 {
			diffs = append(diffs, fmt.Sprintf("%s: %d accepted blocks lost", key, g.Lost))
		}
		if g.MsgsPerSnapshot != w.MsgsPerSnapshot {
			diffs = append(diffs, fmt.Sprintf("%s: msgs/snapshot %d != baseline %d",
				key, g.MsgsPerSnapshot, w.MsgsPerSnapshot))
		}
		if g.InterSiteMsgsPerSnapshot != w.InterSiteMsgsPerSnapshot {
			diffs = append(diffs, fmt.Sprintf("%s: inter-site msgs/snapshot %d != baseline %d",
				key, g.InterSiteMsgsPerSnapshot, w.InterSiteMsgsPerSnapshot))
		}
		if off := relOff(g.BytesPerSnapshot, w.BytesPerSnapshot); off > tol.RelBytes {
			diffs = append(diffs, fmt.Sprintf("%s: bytes/snapshot %g vs baseline %g (rel %.2g > %.2g)",
				key, g.BytesPerSnapshot, w.BytesPerSnapshot, off, tol.RelBytes))
		}
	}
	return diffs
}

// compareLoad diffs the open-loop study's deterministic fields: arrival
// counts come from the seeded trace, Lost must be zero (an admitted job
// never silently disappears, under any autoscaling or preemption
// schedule), and per-job traffic is invariant because every ladder level
// is built from equal-size partitions. The admission split (completed vs
// shed), latency quantiles and throughput depend on host timing and are
// deliberately never gated.
func compareLoad(got, want []LoadRun, tol Tolerances, relOff func(a, b float64) float64) []string {
	loadKey := func(r LoadRun) string {
		return fmt.Sprintf("load/%s/rate=%g", r.Trace, r.RatePerS)
	}
	byKey := make(map[string]LoadRun, len(got))
	for _, r := range got {
		byKey[loadKey(r)] = r
	}
	var diffs []string
	for _, w := range want {
		key := loadKey(w)
		g, ok := byKey[key]
		if !ok {
			diffs = append(diffs, fmt.Sprintf("%s: present in baseline but not measured", key))
			continue
		}
		if g.Arrivals != w.Arrivals {
			diffs = append(diffs, fmt.Sprintf("%s: arrivals %d != baseline %d",
				key, g.Arrivals, w.Arrivals))
		}
		if g.Lost != 0 {
			diffs = append(diffs, fmt.Sprintf("%s: %d admitted jobs lost", key, g.Lost))
		}
		if g.MsgsPerJob != w.MsgsPerJob {
			diffs = append(diffs, fmt.Sprintf("%s: msgs/job %d != baseline %d",
				key, g.MsgsPerJob, w.MsgsPerJob))
		}
		if g.InterSiteMsgsPerJob != w.InterSiteMsgsPerJob {
			diffs = append(diffs, fmt.Sprintf("%s: inter-site msgs/job %d != baseline %d",
				key, g.InterSiteMsgsPerJob, w.InterSiteMsgsPerJob))
		}
		if off := relOff(g.BytesPerJob, w.BytesPerJob); off > tol.RelBytes {
			diffs = append(diffs, fmt.Sprintf("%s: bytes/job %g vs baseline %g (rel %.2g > %.2g)",
				key, g.BytesPerJob, w.BytesPerJob, off, tol.RelBytes))
		}
	}
	return diffs
}

// compareScale diffs the scale sweep's deterministic fields — virtual
// seconds, message counts and volumes come from the event engine's fixed
// dispatch order, so they gate like any other simulated run. Baseline
// points above tol.ScaleMaxRanks are skipped (the PR gate's budget
// filter); wall seconds and engine diagnostics are never gated.
func compareScale(got, want []ScaleRun, tol Tolerances, relOff func(a, b float64) float64) []string {
	scaleKey := func(r ScaleRun) string {
		return fmt.Sprintf("scale/%s/%s/ranks=%d/n=%d", r.Algo, r.Tree, r.Ranks, r.N)
	}
	byKey := make(map[string]ScaleRun, len(got))
	for _, r := range got {
		byKey[scaleKey(r)] = r
	}
	var diffs []string
	for _, w := range want {
		if tol.ScaleMaxRanks > 0 && w.Ranks > tol.ScaleMaxRanks {
			continue
		}
		key := scaleKey(w)
		g, ok := byKey[key]
		if !ok {
			diffs = append(diffs, fmt.Sprintf("%s: present in baseline but not measured", key))
			continue
		}
		if g.Msgs != w.Msgs {
			diffs = append(diffs, fmt.Sprintf("%s: msgs %d != baseline %d", key, g.Msgs, w.Msgs))
		}
		if g.InterSiteMsgs != w.InterSiteMsgs {
			diffs = append(diffs, fmt.Sprintf("%s: inter-site msgs %d != baseline %d",
				key, g.InterSiteMsgs, w.InterSiteMsgs))
		}
		if w.InterContinentMsgs >= 0 && g.InterContinentMsgs != w.InterContinentMsgs {
			diffs = append(diffs, fmt.Sprintf("%s: inter-continent msgs %d != baseline %d",
				key, g.InterContinentMsgs, w.InterContinentMsgs))
		}
		if off := relOff(g.Bytes, w.Bytes); off > tol.RelBytes {
			diffs = append(diffs, fmt.Sprintf("%s: bytes %g vs baseline %g (rel %.2g > %.2g)",
				key, g.Bytes, w.Bytes, off, tol.RelBytes))
		}
		if off := relOff(g.Seconds, w.Seconds); off > tol.RelSeconds {
			diffs = append(diffs, fmt.Sprintf("%s: seconds %g vs baseline %g (rel %.2g > %.2g)",
				key, g.Seconds, w.Seconds, off, tol.RelSeconds))
		}
	}
	return diffs
}

// compareTraceOverhead gates the ring-collector study: span counts are
// deterministic and must match the baseline exactly; the wall-clock
// overhead percentage is host-dependent and only capped.
func compareTraceOverhead(got, want *TraceOverheadRun, tol Tolerances) []string {
	if want == nil {
		return nil
	}
	if got == nil {
		return []string{"trace_overhead: present in baseline but not measured"}
	}
	var diffs []string
	if got.SpansSeen != want.SpansSeen {
		diffs = append(diffs, fmt.Sprintf("trace_overhead: spans seen %d != baseline %d",
			got.SpansSeen, want.SpansSeen))
	}
	if got.SpansRetained != want.SpansRetained {
		diffs = append(diffs, fmt.Sprintf("trace_overhead: spans retained %d != baseline %d",
			got.SpansRetained, want.SpansRetained))
	}
	if got.SpansRetained > got.RetainedBound {
		diffs = append(diffs, fmt.Sprintf("trace_overhead: retained %d exceeds bound %d",
			got.SpansRetained, got.RetainedBound))
	}
	// The wall-clock cap only means something when the run is long
	// enough that timer noise doesn't dominate; on sub-quarter-second
	// measurements (tiny test platforms) the percentage is recorded but
	// not gated.
	const minGateSeconds = 0.25
	if got.UntracedSeconds >= minGateSeconds && got.OverheadPct > tol.MaxTraceOverheadPct {
		diffs = append(diffs, fmt.Sprintf("trace_overhead: overhead %.2f%% exceeds cap %.2f%%",
			got.OverheadPct, tol.MaxTraceOverheadPct))
	}
	return diffs
}

// compareServing diffs the serving sweep's deterministic fields: job
// counts and per-job message/byte traffic. Wall-clock throughput and
// latency quantiles measure the host machine, not the algorithm, and
// are deliberately never gated.
func compareServing(got, want []ServeRun, tol Tolerances, relOff func(a, b float64) float64) []string {
	byClients := make(map[int]ServeRun, len(got))
	for _, r := range got {
		byClients[r.Clients] = r
	}
	var diffs []string
	for _, w := range want {
		key := fmt.Sprintf("serve/clients=%d", w.Clients)
		g, ok := byClients[w.Clients]
		if !ok {
			diffs = append(diffs, fmt.Sprintf("%s: present in baseline but not measured", key))
			continue
		}
		if g.Jobs != w.Jobs {
			diffs = append(diffs, fmt.Sprintf("%s: jobs %d != baseline %d", key, g.Jobs, w.Jobs))
		}
		if g.MsgsPerJob != w.MsgsPerJob {
			diffs = append(diffs, fmt.Sprintf("%s: msgs/job %d != baseline %d",
				key, g.MsgsPerJob, w.MsgsPerJob))
		}
		if g.InterSiteMsgsPerJob != w.InterSiteMsgsPerJob {
			diffs = append(diffs, fmt.Sprintf("%s: inter-site msgs/job %d != baseline %d",
				key, g.InterSiteMsgsPerJob, w.InterSiteMsgsPerJob))
		}
		if off := relOff(g.BytesPerJob, w.BytesPerJob); off > tol.RelBytes {
			diffs = append(diffs, fmt.Sprintf("%s: bytes/job %g vs baseline %g (rel %.2g > %.2g)",
				key, g.BytesPerJob, w.BytesPerJob, off, tol.RelBytes))
		}
	}
	return diffs
}
