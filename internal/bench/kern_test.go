package bench

import (
	"strings"
	"testing"
)

func TestCompareKern(t *testing.T) {
	base := KernReport{Procs: 1, Results: []KernResult{
		{Name: "dgemm_256", NsPerOp: 1000},
		{Name: "dtrsm", NsPerOp: 500},
	}}
	// Within tolerance (and faster) passes.
	got := []KernResult{{Name: "dgemm_256", NsPerOp: 1200}, {Name: "dtrsm", NsPerOp: 100}}
	if diffs := CompareKern(got, base, 0.30); len(diffs) != 0 {
		t.Fatalf("unexpected diffs: %v", diffs)
	}
	// A >30% regression fails.
	got[0].NsPerOp = 1400
	diffs := CompareKern(got, base, 0.30)
	if len(diffs) != 1 || !strings.Contains(diffs[0], "dgemm_256") {
		t.Fatalf("want one dgemm_256 regression, got %v", diffs)
	}
	// A silently dropped kernel fails.
	diffs = CompareKern(got[:1], base, 0.50)
	if len(diffs) != 1 || !strings.Contains(diffs[0], "dtrsm") {
		t.Fatalf("want one missing-kernel diff, got %v", diffs)
	}
	// Extra measured kernels are fine.
	got = append(got[:1], KernResult{Name: "dtrsm", NsPerOp: 500}, KernResult{Name: "new_kernel", NsPerOp: 1})
	if diffs := CompareKern(got, base, 0.50); len(diffs) != 0 {
		t.Fatalf("extra kernel must not fail the gate: %v", diffs)
	}
}

// TestKernSetShape pins the standard kernel set: names stay stable (the
// gate matches by name) and every case carries a flop count where one is
// defined.
func TestKernSetShape(t *testing.T) {
	cases := kernSet()
	want := []string{"dgemm_256", "dgemm_512", "dgemm_tall_16384x64", "dtrsm_right_1024x64",
		"dgeqrf_4096x64", "dgemv_4096x64", "dger_4096x64", "stackqr_n64"}
	if len(cases) != len(want) {
		t.Fatalf("kernel set has %d cases, want %d", len(cases), len(want))
	}
	for i, w := range want {
		if cases[i].name != w {
			t.Fatalf("case %d named %q, want %q", i, cases[i].name, w)
		}
		if cases[i].flops <= 0 {
			t.Fatalf("case %q has no flop count", w)
		}
	}
}
