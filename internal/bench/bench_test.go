package bench

import (
	"strings"
	"testing"

	"gridqr/internal/core"
	"gridqr/internal/grid"
)

func TestExecuteScaLAPACKPoint(t *testing.T) {
	g := grid.Grid5000()
	m := Execute(Run{Grid: g, Sites: 1, M: 1 << 20, N: 64, Algo: ScaLAPACK})
	if m.Seconds <= 0 || m.Gflops <= 0 {
		t.Fatalf("bad measurement %+v", m)
	}
	if m.Counters.Inter().Msgs != 0 {
		t.Fatal("single-site run produced inter-cluster traffic")
	}
	if m.ModelSeconds <= 0 {
		t.Fatal("no model prediction")
	}
}

func TestExecuteTSQRPoint(t *testing.T) {
	g := grid.Grid5000()
	m := Execute(Run{Grid: g, Sites: 4, M: 1 << 22, N: 64, Algo: TSQR,
		DomainsPerCluster: 64, Tree: core.TreeGrid})
	if m.Seconds <= 0 {
		t.Fatalf("bad measurement %+v", m)
	}
	if got := m.Counters.Inter().Msgs; got != 3 {
		t.Fatalf("tuned tree on 4 sites used %d inter-cluster messages, want 3", got)
	}
}

// TestHeadlineClaim is the paper's central statement: for very tall
// matrices, TSQR performance scales almost linearly with the number of
// sites, while ScaLAPACK's speedup stays well below.
func TestHeadlineClaim(t *testing.T) {
	g := grid.Grid5000()
	m, n := 1<<25, 64
	tsqr1 := Execute(Run{Grid: g, Sites: 1, M: m, N: n, Algo: TSQR, DomainsPerCluster: 64, Tree: core.TreeGrid})
	tsqr4 := Execute(Run{Grid: g, Sites: 4, M: m, N: n, Algo: TSQR, DomainsPerCluster: 64, Tree: core.TreeGrid})
	speedup := tsqr4.Gflops / tsqr1.Gflops
	if speedup < 3.2 || speedup > 4.2 {
		t.Fatalf("TSQR 4-site speedup = %g, want ≈4 (near-linear)", speedup)
	}
	sl1 := Execute(Run{Grid: g, Sites: 1, M: m, N: n, Algo: ScaLAPACK})
	sl4 := Execute(Run{Grid: g, Sites: 4, M: m, N: n, Algo: ScaLAPACK})
	slSpeedup := sl4.Gflops / sl1.Gflops
	if slSpeedup >= speedup {
		t.Fatalf("ScaLAPACK speedup %g not below TSQR's %g", slSpeedup, speedup)
	}
}

// TestScaLAPACKSlowsDownOnGridForModerateM reproduces the prior-work
// negative result the paper confirms: for M ≤ 5·10⁶ the single-site
// ScaLAPACK run beats the multi-site ones.
func TestScaLAPACKSlowsDownOnGridForModerateM(t *testing.T) {
	g := grid.Grid5000()
	for _, m := range []int{1 << 17, 1 << 20} {
		s1 := Execute(Run{Grid: g, Sites: 1, M: m, N: 64, Algo: ScaLAPACK})
		s4 := Execute(Run{Grid: g, Sites: 4, M: m, N: 64, Algo: ScaLAPACK})
		if s4.Gflops >= s1.Gflops {
			t.Fatalf("M=%d: ScaLAPACK 4-site (%g) should lose to 1-site (%g)",
				m, s4.Gflops, s1.Gflops)
		}
	}
}

// TestTSQRBeatsScaLAPACK reproduces Figure 8's conclusion: best-config
// TSQR consistently above best-config ScaLAPACK.
func TestTSQRBeatsScaLAPACK(t *testing.T) {
	g := grid.Grid5000()
	cases := []struct {
		n     int
		ms    []int
		sites []int
	}{
		{64, []int{1 << 18, 1 << 21, 1 << 23}, SiteConfigs},
		// N=512 ScaLAPACK runs are the most expensive simulations
		// (1024 allreduces over 256 processes); two points suffice.
		{512, []int{1 << 21}, []int{1, 4}},
	}
	for _, tc := range cases {
		for _, m := range tc.ms {
			bestSL := 0.0
			for _, sites := range tc.sites {
				if r := Execute(Run{Grid: g, Sites: sites, M: m, N: tc.n, Algo: ScaLAPACK}); r.Gflops > bestSL {
					bestSL = r.Gflops
				}
			}
			bestTS := 0.0
			for _, sites := range tc.sites {
				if meas, _ := bestTSQR(g, sites, m, tc.n); meas > bestTS {
					bestTS = meas
				}
			}
			if bestTS <= bestSL {
				t.Fatalf("M=%d N=%d: TSQR best %g not above ScaLAPACK best %g", m, tc.n, bestTS, bestSL)
			}
		}
	}
}

// TestDomainCountTrend reproduces Figure 7's finding: for N=64 on one
// site, more domains is better (optimum = one per processor); for N=512
// the curve flattens or reverses at the top (optimum = one per node).
func TestDomainCountTrend(t *testing.T) {
	g := grid.Grid5000()
	perf := func(n, d int, m int) float64 {
		return Execute(Run{Grid: g, Sites: 1, M: m, N: n, Algo: TSQR,
			DomainsPerCluster: d, Tree: core.TreeGrid}).Gflops
	}
	// N=64: 64 domains (per-processor) beats 1 domain (whole-site
	// ScaLAPACK call).
	if p64 := perf(64, 64, 1<<20); p64 <= perf(64, 1, 1<<20) {
		t.Fatal("N=64: per-processor domains should beat one big domain")
	}
	// N=512: 32 domains (per-node) at least as good as 64 — trading
	// flops for intra-node messages stops paying (paper Section V-D).
	if perf(512, 32, 1<<21) < perf(512, 64, 1<<21)*0.98 {
		t.Fatal("N=512: per-node domains should be competitive with per-processor")
	}
}

func TestMSweepBounds(t *testing.T) {
	ms64 := MSweep(64)
	if ms64[0] != 1<<17 || ms64[len(ms64)-1] != 1<<25 {
		t.Fatalf("MSweep(64) = %v", ms64)
	}
	ms512 := MSweep(512)
	if ms512[len(ms512)-1] != 1<<23 {
		t.Fatalf("MSweep(512) top = %d", ms512[len(ms512)-1])
	}
}

func TestTableIMeasuredVsModel(t *testing.T) {
	g := grid.SmallTestGrid(4, 4, 1) // 16 procs
	rows := TableI(g, 1<<16, 16)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	sl, ts := rows[0], rows[1]
	// Model: ScaLAPACK sends 2N·log₂P critical-path messages vs TSQR's
	// log₂P — factor 2N. Measured totals keep a comparable gap.
	if sl.ModelMsgs/ts.ModelMsgs != float64(2*16) {
		t.Fatalf("model message ratio %g", sl.ModelMsgs/ts.ModelMsgs)
	}
	if sl.MeasMsgs < 10*ts.MeasMsgs {
		t.Fatalf("measured gap too small: %g vs %g", sl.MeasMsgs, ts.MeasMsgs)
	}
	// Per-process measured flops within 35% of the model row (the
	// model drops lower-order terms).
	for _, r := range rows {
		if r.MeasFlops < 0.65*r.ModelFlops || r.MeasFlops > 1.35*r.ModelFlops {
			t.Fatalf("%s: measured flops %g vs model %g", r.Name, r.MeasFlops, r.ModelFlops)
		}
	}
}

func TestTableIIRatios(t *testing.T) {
	g := grid.SmallTestGrid(2, 4, 1)
	r1 := TableI(g, 1<<15, 8)
	r2 := TableII(g, 1<<15, 8)
	for i := range r1 {
		if r2[i].ModelFlops != 2*r1[i].ModelFlops {
			t.Fatalf("%s: Table II model not double Table I", r1[i].Name)
		}
		ratio := r2[i].MeasFlops / r1[i].MeasFlops
		if ratio < 1.7 || ratio > 2.3 {
			t.Fatalf("%s: measured Q+R/R flop ratio %g, want ≈2 (Property 1)", r1[i].Name, ratio)
		}
	}
}

func TestCompareMessagesFig1Fig2(t *testing.T) {
	// The paper's Fig. 1/2 example: 3 clusters, M×3 matrix.
	c := CompareMessages(3, 2, 60, 3)
	if c.TSQRGridInter != 2 {
		t.Fatalf("tuned tree inter-cluster messages = %d, want the optimal 2", c.TSQRGridInter)
	}
	if c.OptimalInter != 2 {
		t.Fatalf("optimal = %d", c.OptimalInter)
	}
	if c.ScaLAPACKInter <= 5*c.TSQRGridInter {
		t.Fatalf("ScaLAPACK inter-cluster count %d should dwarf TSQR's %d",
			c.ScaLAPACKInter, c.TSQRGridInter)
	}
	// ScaLAPACK's count grows with N; TSQR's must not.
	c8 := CompareMessages(3, 2, 160, 8)
	if c8.TSQRGridInter != 2 {
		t.Fatalf("tuned tree count changed with N: %d", c8.TSQRGridInter)
	}
	if c8.ScaLAPACKInter <= c.ScaLAPACKInter {
		t.Fatal("ScaLAPACK inter-cluster count should grow with N")
	}
}

func TestFig3aTable(t *testing.T) {
	s := Fig3aTable(grid.Grid5000())
	for _, want := range []string{"Orsay", "Sophia", "7.97", "890"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Fig3a table missing %q:\n%s", want, s)
		}
	}
}

func TestFigureRendering(t *testing.T) {
	// A miniature figure end-to-end: panels render without panicking and
	// contain the series labels.
	g := grid.Grid5000()
	f := Figure{Name: "mini", Title: "test"}
	s := Series{Label: "1 site(s)"}
	meas := Execute(Run{Grid: g, Sites: 1, M: 1 << 18, N: 64, Algo: TSQR, Tree: core.TreeGrid})
	s.Points = append(s.Points, Point{X: 1 << 18, Gflops: meas.Gflops, Model: meas.ModelGflops})
	f.Panels = append(f.Panels, Panel{Title: "N = 64", XLabel: "M", Series: []Series{s}})
	out := f.String()
	if !strings.Contains(out, "N = 64") || !strings.Contains(out, "1 site(s)") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

func TestFormatTable(t *testing.T) {
	rows := []TableRow{{Name: "x", ModelMsgs: 1, MeasMsgs: 2}}
	out := FormatTable("T", rows)
	if !strings.Contains(out, "model #msg") || !strings.Contains(out, "x") {
		t.Fatalf("bad table:\n%s", out)
	}
}

// TestFigure7Shape runs the real Figure 7 N=64 panel (cheap) and checks
// the paper's qualitative findings on it.
func TestFigure7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short mode")
	}
	g := grid.Grid5000()
	f := Figure7(g)
	n64 := f.Panels[0]
	// Performance increases with M: the M=8.4M series dominates the
	// M=65536 series everywhere.
	big, small := n64.Series[0], n64.Series[3]
	for i := range big.Points {
		if big.Points[i].Gflops <= small.Points[i].Gflops {
			t.Fatalf("point %d: tall series %g not above short series %g",
				i, big.Points[i].Gflops, small.Points[i].Gflops)
		}
	}
	// For the smallest M, more domains helps: 64 domains beats 1.
	if small.Points[len(small.Points)-1].Gflops <= small.Points[0].Gflops {
		t.Fatal("N=64: domain count should improve small-M performance")
	}
}

func TestTreeAblationAlignedGrid(t *testing.T) {
	g := grid.Grid5000()
	rows := TreeAblation(g, 1<<20, 64, 16)
	byTree := map[core.Tree]AblationRow{}
	for _, r := range rows {
		byTree[r.Tree] = r
	}
	// Tuned tree: exactly C−1 inter-cluster messages.
	if byTree[core.TreeGrid].InterMsgs != 3 {
		t.Fatalf("grid tree inter msgs = %d want 3", byTree[core.TreeGrid].InterMsgs)
	}
	// On power-of-two-aligned layouts the rank-ordered binomial happens
	// to coincide with the tuned tree (see EXPERIMENTS.md) …
	if byTree[core.TreeBinary].InterMsgs != 3 {
		t.Fatalf("aligned binomial inter msgs = %d want 3", byTree[core.TreeBinary].InterMsgs)
	}
	// … while flat and shuffled trees pay many wide-area messages.
	if byTree[core.TreeFlat].InterMsgs <= 3 || byTree[core.TreeBinaryShuffled].InterMsgs <= 3 {
		t.Fatalf("flat/shuffled should exceed the optimum: %+v", rows)
	}
	if byTree[core.TreeBinaryShuffled].Seconds <= byTree[core.TreeGrid].Seconds {
		t.Fatal("shuffled tree should be slower than the tuned tree")
	}
}

func TestTreeAblationMisalignedBinomial(t *testing.T) {
	// With a domain count per cluster that is not a power of two, the
	// rank-ordered binomial no longer nests inside clusters and crosses
	// the wide area more often than the tuned tree — topology-awareness
	// is what guarantees the optimum, not luck of alignment.
	g := grid.SmallTestGrid(3, 12, 1) // 3 clusters × 12 procs
	run := func(tree core.Tree) int64 {
		meas := Execute(Run{Grid: g, Sites: 3, M: 1 << 16, N: 8, Algo: TSQR,
			DomainsPerCluster: 12, Tree: tree})
		return meas.Counters.Inter().Msgs
	}
	gridMsgs := run(core.TreeGrid)
	binMsgs := run(core.TreeBinary)
	if gridMsgs != 2 {
		t.Fatalf("tuned tree inter msgs = %d want 2", gridMsgs)
	}
	if binMsgs <= gridMsgs {
		t.Fatalf("misaligned binomial (%d) should exceed the tuned tree (%d)", binMsgs, gridMsgs)
	}
}

// TestFullFigureGenerators runs Figures 4, 5, 6 and 8 end to end with
// trimmed sweeps, checking panel structure, hull logic and CSV output.
func TestFullFigureGenerators(t *testing.T) {
	savedNs, savedSites, savedBest, savedSweep := PanelNs, SiteConfigs, BestDomainCandidates, DomainSweep
	defer func() {
		PanelNs, SiteConfigs, BestDomainCandidates, DomainSweep = savedNs, savedSites, savedBest, savedSweep
	}()
	PanelNs = []int{64}
	SiteConfigs = []int{1, 2}
	BestDomainCandidates = []int{64}
	DomainSweep = []int{1, 64}

	g := grid.Grid5000()
	f4 := Figure4(g)
	f5 := Figure5(g)
	if len(f4.Panels) != 1 || len(f4.Panels[0].Series) != 2 {
		t.Fatalf("figure 4 structure: %d panels", len(f4.Panels))
	}
	if got := len(f5.Panels[0].Series[0].Points); got != len(MSweep(64)) {
		t.Fatalf("figure 5 points = %d", got)
	}
	f8 := Figure8(g, &f4, &f5)
	// Hull: every Figure-8 point must equal the max across site series.
	for i, pt := range f8.Panels[0].Series[0].Points {
		best := 0.0
		for _, s := range f5.Panels[0].Series {
			if v := s.Points[i].Gflops; v > best {
				best = v
			}
		}
		if pt.Gflops != best {
			t.Fatalf("hull point %d = %g want %g", i, pt.Gflops, best)
		}
	}
	// TSQR best must beat ScaLAPACK best everywhere (Fig. 8 claim).
	for i := range f8.Panels[0].Series[0].Points {
		if f8.Panels[0].Series[0].Points[i].Gflops <= f8.Panels[0].Series[1].Points[i].Gflops {
			t.Fatalf("point %d: TSQR best not above ScaLAPACK best", i)
		}
	}
	// CSV rendering.
	csv := f8.CSV()
	if !strings.Contains(csv, "panel,series,x,gflops,model_gflops") ||
		!strings.Contains(csv, `"TSQR (best)"`) {
		t.Fatalf("bad CSV:\n%s", csv[:120])
	}
	// Figure 6 with the trimmed domain sweep.
	f6 := Figure6(g)
	if len(f6.Panels) != 1 || len(f6.Panels[0].Series[0].Points) != 2 {
		t.Fatal("figure 6 structure wrong")
	}
	// Text rendering of a multi-series figure.
	if out := f4.String(); !strings.Contains(out, "1 site(s)") {
		t.Fatal("figure text rendering broken")
	}
}

func TestFormatAblationAndStragglers(t *testing.T) {
	g := grid.SmallTestGrid(2, 2, 1)
	out := FormatAblation(1<<14, 8, 2, TreeAblation(g, 1<<14, 8, 2))
	for _, want := range []string{"grid", "binary-shuffled", "inter msgs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation output missing %q", want)
		}
	}
	sOut := FormatStragglers(1<<14, 8, StragglerStudy(g, 1<<14, 8, []float64{2}))
	if !strings.Contains(sOut, "2.0x") {
		t.Fatalf("straggler output:\n%s", sOut)
	}
}

// TestPropertiesSimulated verifies the paper's Properties 1–5 against the
// simulator itself (the perfmodel tests verify them against the analytic
// model; this closes the loop).
func TestPropertiesSimulated(t *testing.T) {
	g := grid.Grid5000()
	point := func(m, n int, wantQ bool) Measurement {
		return Execute(Run{Grid: g, Sites: 4, M: m, N: n, Algo: TSQR,
			Tree: core.TreeGrid, WantQ: wantQ})
	}
	// Property 1: Q+R time ≈ 2× R-only.
	r := point(1<<22, 64, false)
	qr := point(1<<22, 64, true)
	if ratio := qr.Seconds / r.Seconds; ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("Property 1: Q+R/R = %g want ≈2", ratio)
	}
	// Property 2: performance below the domanial bound.
	if bound := 256 * g.KernelGflops(0, 64); r.Gflops > bound {
		t.Fatalf("Property 2: %g Gflop/s above domanial bound %g", r.Gflops, bound)
	}
	// Property 3: performance grows with M.
	prev := 0.0
	for _, m := range []int{1 << 18, 1 << 20, 1 << 22, 1 << 24} {
		if p := point(m, 64, false).Gflops; p <= prev {
			t.Fatalf("Property 3: not monotone at M=%d", m)
		} else {
			prev = p
		}
	}
	// Property 4: performance grows with N.
	prev = 0.0
	for _, n := range []int{32, 64, 128, 256} {
		if p := point(1<<22, n, false).Gflops; p <= prev {
			t.Fatalf("Property 4: not monotone at N=%d", n)
		} else {
			prev = p
		}
	}
	// Property 5: TSQR beats ScaLAPACK, and the advantage narrows as N
	// grows.
	prevAdv := 1e18
	for _, n := range []int{64, 256, 512} {
		sl := Execute(Run{Grid: g, Sites: 4, M: 1 << 21, N: n, Algo: ScaLAPACK})
		ts := point(1<<21, n, false)
		adv := ts.Gflops / sl.Gflops
		if adv <= 1 {
			t.Fatalf("Property 5: TSQR not ahead at N=%d (adv %g)", n, adv)
		}
		if adv >= prevAdv {
			t.Fatalf("Property 5: advantage not shrinking at N=%d (%g >= %g)", n, adv, prevAdv)
		}
		prevAdv = adv
	}
}
