package bench

import (
	"fmt"
	"strings"

	"gridqr/internal/core"
	"gridqr/internal/grid"
)

// AblationRow compares reduction-tree shapes at one experiment point.
type AblationRow struct {
	Tree      core.Tree
	Seconds   float64
	Gflops    float64
	InterMsgs int64
	TotalMsgs int64
}

// TreeAblation runs TSQR with every reduction-tree shape on the full
// grid at a fixed problem size — the design-choice study behind the
// paper's Fig. 2: only the grid-tuned tree reaches the provably minimal
// C−1 inter-cluster messages, and the gap widens for the shuffled
// (topology-oblivious) placement the paper warns about.
func TreeAblation(g *grid.Grid, m, n, domainsPerCluster int) []AblationRow {
	var rows []AblationRow
	for _, tree := range []core.Tree{core.TreeGrid, core.TreeBinary, core.TreeFlat, core.TreeBinaryShuffled} {
		meas := Execute(Run{Grid: g, Sites: len(g.Clusters), M: m, N: n, Algo: TSQR,
			DomainsPerCluster: domainsPerCluster, Tree: tree})
		rows = append(rows, AblationRow{
			Tree:      tree,
			Seconds:   meas.Seconds,
			Gflops:    meas.Gflops,
			InterMsgs: meas.Counters.Inter().Msgs,
			TotalMsgs: meas.Counters.Total().Msgs,
		})
	}
	return rows
}

// FormatAblation renders the study as a text table.
func FormatAblation(m, n, d int, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Reduction-tree ablation: TSQR, M=%d, N=%d, %d domains/cluster, 4 sites ==\n", m, n, d)
	fmt.Fprintf(&b, "%-18s %10s %10s %12s %12s\n", "tree", "time (s)", "Gflop/s", "inter msgs", "total msgs")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %10.4f %10.1f %12d %12d\n",
			r.Tree, r.Seconds, r.Gflops, r.InterMsgs, r.TotalMsgs)
	}
	return b.String()
}
