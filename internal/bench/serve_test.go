package bench

import (
	"context"
	"strings"
	"testing"
	"time"

	"gridqr/internal/grid"
	"gridqr/internal/sched"
	"gridqr/internal/telemetry"
)

// TestServeStudyDeterministicTraffic runs the closed-loop harness on a
// small platform and checks the invariant the perf gate relies on: with
// batching off and symmetric two-site partitions, every load point sees
// the identical per-job traffic — here 8-rank partitions, so a 7-message
// reduction with exactly one inter-site hop.
func TestServeStudyDeterministicTraffic(t *testing.T) {
	g := grid.SmallTestGrid(4, 2, 2) // 4 sites × 4 procs → 2 partitions × 8 ranks
	rows, err := ServeStudy(context.Background(), g, []int{1, 3}, 4, ServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Jobs != int64(r.Clients*4) {
			t.Errorf("clients=%d: %d jobs completed, want %d", r.Clients, r.Jobs, r.Clients*4)
		}
		if r.MsgsPerJob != 7 || r.InterSiteMsgsPerJob != 1 {
			t.Errorf("clients=%d: msgs/job=%d inter/job=%d, want 7 and 1",
				r.Clients, r.MsgsPerJob, r.InterSiteMsgsPerJob)
		}
		if r.BytesPerJob != rows[0].BytesPerJob {
			t.Errorf("bytes/job drifts across load points: %g vs %g",
				r.BytesPerJob, rows[0].BytesPerJob)
		}
		if r.ThroughputJPS <= 0 || r.P50Seconds <= 0 || r.P99Seconds < r.P50Seconds ||
			r.P999Seconds < r.P99Seconds {
			t.Errorf("clients=%d: implausible timing row %+v", r.Clients, r)
		}
	}
	out := FormatServe(g, rows)
	if !strings.Contains(out, "msgs/job") || !strings.Contains(out, "closed-loop") ||
		!strings.Contains(out, "p999 (s)") {
		t.Fatalf("table missing headers:\n%s", out)
	}
}

// TestServeStudyCancel: a canceled context stops the sweep after the
// in-flight jobs drain, returning the rows finished so far and the
// context's error — never ErrDrainTimeout for a healthy server.
func TestServeStudyCancel(t *testing.T) {
	g := grid.SmallTestGrid(2, 2, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the sweep: drain immediately at the first point
	rows, err := ServeStudy(ctx, g, []int{1, 2}, 4,
		ServeOptions{DrainTimeout: 10 * time.Second})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want the first (drained) point only", len(rows))
	}
	// Clients observed the cancel before submitting anything.
	if rows[0].Jobs != 0 {
		t.Fatalf("pre-canceled sweep completed %d jobs", rows[0].Jobs)
	}
}

// TestServeStudyObservability: the OnPoint hook sees the live server
// and the sweep's registry carries the SLO series per point.
func TestServeStudyObservability(t *testing.T) {
	g := grid.SmallTestGrid(2, 2, 2)
	var points int
	var lastReg *telemetry.Registry
	rows, err := ServeStudy(context.Background(), g, []int{2}, 3, ServeOptions{
		TraceRing: &telemetry.RingConfig{Capacity: 64, Head: 8},
		OnPoint: func(srv *sched.Server, reg *telemetry.Registry) {
			points++
			lastReg = reg
			if srv.TraceTail(1) == nil {
				t.Error("OnPoint server is not ring-traced")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if points != 1 || len(rows) != 1 {
		t.Fatalf("points=%d rows=%d", points, len(rows))
	}
	if c := lastReg.Counter("sched.jobs.completed").Value(); c != 6 {
		t.Fatalf("registry completed = %v, want 6", c)
	}
}

// TestCompareReportsServing checks that the gate diffs exactly the
// deterministic serving fields and ignores the wall-clock ones.
func TestCompareReportsServing(t *testing.T) {
	base := Report{Serving: []ServeRun{{
		Clients: 2, Jobs: 16, ThroughputJPS: 100, P50Seconds: 0.01, P99Seconds: 0.03,
		MsgsPerJob: 127, InterSiteMsgsPerJob: 1, BytesPerJob: 536448,
	}}}

	same := base
	same.Serving = append([]ServeRun(nil), base.Serving...)
	same.Serving[0].ThroughputJPS = 9 // wall-clock: must not gate
	same.Serving[0].P99Seconds = 42   // wall-clock: must not gate
	if d := CompareReports(same, base, Tolerances{}); len(d) != 0 {
		t.Fatalf("wall-clock drift flagged: %v", d)
	}

	drift := base
	drift.Serving = []ServeRun{{Clients: 2, Jobs: 16, MsgsPerJob: 128,
		InterSiteMsgsPerJob: 2, BytesPerJob: 1}}
	d := CompareReports(drift, base, Tolerances{})
	if len(d) != 3 {
		t.Fatalf("want 3 serving diffs (msgs, inter, bytes), got %v", d)
	}

	missing := Report{}
	if d := CompareReports(missing, base, Tolerances{}); len(d) != 1 ||
		!strings.Contains(d[0], "not measured") {
		t.Fatalf("missing serving row not flagged: %v", d)
	}
}
