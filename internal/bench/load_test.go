package bench

import (
	"context"
	"strings"
	"testing"
	"time"

	"gridqr/internal/grid"
)

// TestLoadStudySmoke runs one open-loop point on a small grid with the
// autoscaler in the loop and pins the accounting invariants: every
// arrival is either admitted or typed-shed, no admitted job is lost, and
// per-job traffic stays the exact equal-partition figure regardless of
// how the autoscaler moved the plan during the run.
func TestLoadStudySmoke(t *testing.T) {
	g := grid.SmallTestGrid(4, 1, 2) // 4 sites x 2 ranks; ladder 1..2 x 4-rank partitions
	rows, err := LoadStudy(context.Background(), g, "poisson", []float64{200}, 40, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	r := rows[0]
	if r.Trace != "poisson" || r.Arrivals != 40 {
		t.Fatalf("trace=%q arrivals=%d, want poisson/40", r.Trace, r.Arrivals)
	}
	if r.Submitted+r.Shed != int64(r.Arrivals) {
		t.Errorf("submitted %d + shed %d != arrivals %d", r.Submitted, r.Shed, r.Arrivals)
	}
	if r.Lost != 0 || r.Failed != 0 {
		t.Errorf("lost=%d failed=%d, want 0/0", r.Lost, r.Failed)
	}
	if r.Completed < 1 {
		t.Errorf("no jobs completed")
	}
	// A 4-rank two-site partition serves each TSQR with exactly 3 merge
	// messages, 1 of them inter-site — invariant across ladder levels.
	if r.MsgsPerJob != 3 || r.InterSiteMsgsPerJob != 1 {
		t.Errorf("msgs/job=%d inter/job=%d, want 3/1", r.MsgsPerJob, r.InterSiteMsgsPerJob)
	}
	if r.BytesPerJob <= 0 || r.ThroughputJPS <= 0 {
		t.Errorf("bytes/job=%g throughput=%g, want positive", r.BytesPerJob, r.ThroughputJPS)
	}
	if out := FormatLoad(g, rows); !strings.Contains(out, "poisson") {
		t.Errorf("FormatLoad missing trace row:\n%s", out)
	}
}

// TestLoadShedding drives offered load far past any capacity the small
// grid can have: the bounded queue must shed typed (never losing an
// admitted job), which is the overload-knee behavior the study exists to
// expose.
func TestLoadSheddingPastKnee(t *testing.T) {
	g := grid.SmallTestGrid(2, 1, 2)
	rows, err := LoadStudy(context.Background(), g, "bursty", []float64{500000}, 80,
		LoadOptions{QueueCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Shed == 0 {
		t.Error("overloaded run shed nothing; knee not reached")
	}
	if r.Submitted+r.Shed != int64(r.Arrivals) {
		t.Errorf("submitted %d + shed %d != arrivals %d", r.Submitted, r.Shed, r.Arrivals)
	}
	if r.Lost != 0 {
		t.Errorf("lost %d admitted jobs under overload", r.Lost)
	}
}

// TestLoadStudyCancel pins the ctx contract: cancellation stops the
// arrival process, admitted jobs are still drained, and the partial rows
// come back with ctx's error.
func TestLoadStudyCancel(t *testing.T) {
	g := grid.SmallTestGrid(2, 1, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rows, err := LoadStudy(ctx, g, "poisson", []float64{100, 100}, 1000, LoadOptions{})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for _, r := range rows {
		if r.Lost != 0 {
			t.Errorf("canceled run lost %d jobs", r.Lost)
		}
	}
}

// TestLoadLadder pins the ladder shapes: paired-site equal partitions
// doubling per level on even-site grids, per-site fallback otherwise,
// and always topping out at the full plan.
func TestLoadLadder(t *testing.T) {
	ladder, pred := loadLadder(grid.Grid5000())
	if len(ladder) != 2 || pred.Sites != 2 {
		t.Fatalf("Grid5000 ladder levels=%d pred.Sites=%d, want 2/2", len(ladder), pred.Sites)
	}
	for lvl, plan := range ladder {
		if len(plan.Groups) != 1<<lvl {
			t.Errorf("level %d has %d partitions, want %d", lvl, len(plan.Groups), 1<<lvl)
		}
		for _, g := range plan.Groups {
			if len(g) != 128 {
				t.Errorf("level %d partition size %d, want 128", lvl, len(g))
			}
		}
	}

	ladder, pred = loadLadder(grid.SmallTestGrid(3, 1, 2)) // odd sites: per-site fallback
	if pred.Sites != 1 {
		t.Errorf("odd-site pred.Sites=%d, want 1", pred.Sites)
	}
	if top := ladder[len(ladder)-1]; len(top.Groups) != 3 {
		t.Errorf("odd-site top level has %d partitions, want 3", len(top.Groups))
	}
}

func TestMakeTraceValidation(t *testing.T) {
	if _, err := makeTrace("uniform", 100, 10); err == nil {
		t.Error("unknown arrival process accepted")
	}
	for _, name := range []string{"poisson", "bursty", "diurnal"} {
		tr, err := makeTrace(name, 100, 10)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tr.Name() != name {
			t.Errorf("trace name %q, want %q", tr.Name(), name)
		}
	}
}

// TestLoadStudyNoAutoscale pins the fixed-plan mode used by A/B runs.
func TestLoadStudyNoAutoscale(t *testing.T) {
	g := grid.SmallTestGrid(2, 1, 2)
	start := time.Now()
	rows, err := LoadStudy(context.Background(), g, "diurnal", []float64{400}, 20,
		LoadOptions{NoAutoscale: true})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.ScaleUps != 0 || r.ScaleDowns != 0 {
		t.Errorf("autoscaler acted with NoAutoscale: ups=%d downs=%d", r.ScaleUps, r.ScaleDowns)
	}
	if r.Lost != 0 {
		t.Errorf("lost %d jobs", r.Lost)
	}
	if time.Since(start) > time.Minute {
		t.Errorf("tiny study took %v", time.Since(start))
	}
}
