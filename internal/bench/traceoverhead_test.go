package bench

import (
	"strings"
	"testing"

	"gridqr/internal/grid"
)

// TestTraceOverheadStudy runs the study on a small platform: span
// accounting must be deterministic across repeats and within bound.
func TestTraceOverheadStudy(t *testing.T) {
	g := grid.SmallTestGrid(2, 2, 2)
	a := TraceOverheadStudy(g)
	b := TraceOverheadStudy(g)
	if a.SpansSeen == 0 || a.SpansRetained == 0 {
		t.Fatalf("no spans recorded: %+v", a)
	}
	if a.SpansSeen != b.SpansSeen || a.SpansRetained != b.SpansRetained {
		t.Fatalf("span counts drift across runs: %+v vs %+v", a, b)
	}
	if a.SpansRetained > a.RetainedBound {
		t.Fatalf("retained %d exceeds bound %d", a.SpansRetained, a.RetainedBound)
	}
	if a.UntracedSeconds <= 0 || a.RingSeconds <= 0 {
		t.Fatalf("missing wall-clock measurements: %+v", a)
	}
	if out := FormatTraceOverhead(a); !strings.Contains(out, "overhead") ||
		!strings.Contains(out, "retained") {
		t.Fatalf("rendering incomplete:\n%s", out)
	}
}

// TestCompareReportsTraceOverhead: exact span gating, capped overhead,
// wall-clock otherwise ignored.
func TestCompareReportsTraceOverhead(t *testing.T) {
	base := Report{TraceOverhead: &TraceOverheadRun{
		M: TraceOverheadM, N: TraceOverheadN, Procs: 256,
		UntracedSeconds: 1, RingSeconds: 1.02, OverheadPct: 2,
		SpansSeen: 100000, SpansRetained: 73728, RetainedBound: 73728,
	}}

	same := Report{TraceOverhead: &TraceOverheadRun{
		SpansSeen: 100000, SpansRetained: 73728, RetainedBound: 73728,
		UntracedSeconds: 9, RingSeconds: 9.5, OverheadPct: 5.6, // host-dependent: under the cap
	}}
	if d := CompareReports(same, base, Tolerances{}); len(d) != 0 {
		t.Fatalf("wall-clock drift flagged: %v", d)
	}

	drift := Report{TraceOverhead: &TraceOverheadRun{
		SpansSeen: 99999, SpansRetained: 73000, RetainedBound: 73728, OverheadPct: 2,
	}}
	if d := CompareReports(drift, base, Tolerances{}); len(d) != 2 {
		t.Fatalf("want 2 span diffs, got %v", d)
	}

	hot := Report{TraceOverhead: &TraceOverheadRun{
		SpansSeen: 100000, SpansRetained: 73728, RetainedBound: 73728,
		UntracedSeconds: 1, OverheadPct: 25,
	}}
	d := CompareReports(hot, base, Tolerances{})
	if len(d) != 1 || !strings.Contains(d[0], "exceeds cap") {
		t.Fatalf("overhead cap not enforced: %v", d)
	}

	// A milliseconds-long measurement is all timer noise: the span
	// accounting still gates, the percentage does not.
	tiny := Report{TraceOverhead: &TraceOverheadRun{
		SpansSeen: 100000, SpansRetained: 73728, RetainedBound: 73728,
		UntracedSeconds: 0.01, OverheadPct: 80,
	}}
	if d := CompareReports(tiny, base, Tolerances{}); len(d) != 0 {
		t.Fatalf("noise-dominated overhead gated: %v", d)
	}

	if d := CompareReports(Report{}, base, Tolerances{}); len(d) != 1 ||
		!strings.Contains(d[0], "not measured") {
		t.Fatalf("missing study not flagged: %v", d)
	}
}
