package bench

import (
	"fmt"
	"strings"

	"gridqr/internal/core"
	"gridqr/internal/grid"
	"gridqr/internal/mpi"
	"gridqr/internal/perfmodel"
	"gridqr/internal/scalapack"
)

// TableRow compares a Table I/II model row against counters measured from
// an actual cost-only run of the corresponding algorithm.
type TableRow struct {
	Name                    string
	ModelMsgs, MeasMsgs     float64
	ModelVolume, MeasVolume float64
	ModelFlops, MeasFlops   float64
}

// TableI reproduces the paper's Table I (R-factor only): the model's
// per-critical-path counts next to totals measured from real runs.
// Measured message counts are whole-run totals (every point-to-point
// message on every link), while the model counts critical-path
// allreduce stages, so the comparison reports both conventions.
func TableI(g *grid.Grid, m, n int) []TableRow {
	return tableRows(g, m, n, false)
}

// TableII is the Q-and-R variant (paper Table II).
func TableII(g *grid.Grid, m, n int) []TableRow {
	return tableRows(g, m, n, true)
}

func tableRows(g *grid.Grid, m, n int, wantQ bool) []TableRow {
	p := g.Procs()
	mk := func(name string, algo Algorithm, model perfmodel.Breakdown) TableRow {
		meas := Execute(Run{Grid: g, Sites: len(g.Clusters), M: m, N: n, Algo: algo,
			Tree: core.TreeGrid, WantQ: wantQ})
		t := meas.Counters.Total()
		return TableRow{
			Name:      name,
			ModelMsgs: model.Msgs, MeasMsgs: float64(t.Msgs),
			ModelVolume: model.Volume, MeasVolume: t.Bytes,
			ModelFlops: model.Flops, MeasFlops: meas.Counters.Flops / float64(p),
		}
	}
	if wantQ {
		return []TableRow{
			mk("ScaLAPACK QR2", ScaLAPACK, perfmodel.ScaLAPACKQR(m, n, p)),
			mk("TSQR", TSQR, perfmodel.TSQRQR(m, n, p)),
		}
	}
	return []TableRow{
		mk("ScaLAPACK QR2", ScaLAPACK, perfmodel.ScaLAPACKR(m, n, p)),
		mk("TSQR", TSQR, perfmodel.TSQRR(m, n, p)),
	}
}

// FormatTable renders TableI/TableII rows as text.
func FormatTable(title string, rows []TableRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	fmt.Fprintf(&b, "%-16s %14s %14s %16s %16s %16s %16s\n",
		"algorithm", "model #msg", "meas #msg", "model bytes", "meas bytes", "model flops/P", "meas flops/P")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %14.0f %14.0f %16.3g %16.3g %16.3g %16.3g\n",
			r.Name, r.ModelMsgs, r.MeasMsgs, r.ModelVolume, r.MeasVolume, r.ModelFlops, r.MeasFlops)
	}
	return b.String()
}

// MessageComparison reproduces the Fig. 1 / Fig. 2 argument: the
// inter-cluster message count of ScaLAPACK's topology-oblivious
// per-column reductions versus the tuned TSQR tree, on an M×N matrix
// over a given number of clusters.
type MessageComparison struct {
	Clusters                 int
	N                        int
	ScaLAPACKInter           int64 // measured inter-cluster messages, PDGEQR2
	TSQRGridInter            int64 // measured inter-cluster messages, tuned tree
	TSQRShuffledInter        int64 // binomial tree over shuffled domains
	OptimalInter             int64 // C−1, the provable minimum
	ScaLAPACKTotal, TSQRGrid int64 // total messages for context
}

// CompareMessages measures the Fig. 1 / Fig. 2 counts on a small grid.
func CompareMessages(clusters, procsPerCluster, m, n int) MessageComparison {
	g := grid.SmallTestGrid(clusters, procsPerCluster, 1)
	offsets := scalapack.BlockOffsets(m, g.Procs())

	runWorld := func(fn func(*mpi.Ctx)) mpi.CounterSnapshot {
		w := mpi.NewWorld(g, mpi.CostOnly())
		w.Run(fn)
		return w.Counters()
	}
	sl := runWorld(func(ctx *mpi.Ctx) {
		scalapack.PDGEQR2(mpi.WorldComm(ctx), scalapack.Input{M: m, N: n, Offsets: offsets})
	})
	ts := runWorld(func(ctx *mpi.Ctx) {
		core.Factorize(mpi.WorldComm(ctx), core.Input{M: m, N: n, Offsets: offsets},
			core.Config{Tree: core.TreeGrid})
	})
	sh := runWorld(func(ctx *mpi.Ctx) {
		core.Factorize(mpi.WorldComm(ctx), core.Input{M: m, N: n, Offsets: offsets},
			core.Config{Tree: core.TreeBinaryShuffled, ShuffleSeed: 12345})
	})
	return MessageComparison{
		Clusters:          clusters,
		N:                 n,
		ScaLAPACKInter:    sl.Inter().Msgs,
		TSQRGridInter:     ts.Inter().Msgs,
		TSQRShuffledInter: sh.Inter().Msgs,
		OptimalInter:      int64(clusters - 1),
		ScaLAPACKTotal:    sl.Total().Msgs,
		TSQRGrid:          ts.Total().Msgs,
	}
}

// Fig3aTable renders the platform's link matrix in the layout of the
// paper's Fig. 3(a): latency in ms and throughput in Mb/s between sites.
func Fig3aTable(g *grid.Grid) string {
	var b strings.Builder
	names := make([]string, len(g.Clusters))
	for i, c := range g.Clusters {
		names[i] = c.Name
	}
	fmt.Fprintf(&b, "Latency (ms)%12s", "")
	for _, n := range names {
		fmt.Fprintf(&b, "%10s", n)
	}
	fmt.Fprintln(&b)
	for i, n := range names {
		fmt.Fprintf(&b, "%-24s", n)
		for j := range names {
			if j < i {
				fmt.Fprintf(&b, "%10s", "")
			} else {
				fmt.Fprintf(&b, "%10.2f", g.Inter[i][j].Latency*1e3)
			}
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "\nThroughput (Mb/s)%7s", "")
	for _, n := range names {
		fmt.Fprintf(&b, "%10s", n)
	}
	fmt.Fprintln(&b)
	for i, n := range names {
		fmt.Fprintf(&b, "%-24s", n)
		for j := range names {
			if j < i {
				fmt.Fprintf(&b, "%10s", "")
			} else {
				fmt.Fprintf(&b, "%10.0f", g.Inter[i][j].Bandwidth*8/1e6)
			}
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
