package bench

import (
	"encoding/json"
	"io"

	"gridqr/internal/core"
	"gridqr/internal/grid"
	"gridqr/internal/telemetry"
)

// Report is the machine-readable outcome of a set of benchmark runs:
// the configuration, the headline Gflop/s, measured traffic, and the
// critical-path decomposition of each traced run. It is what
// `gridbench -json` writes, and what the committed results/BENCH_*.json
// files record for regression comparison across PRs.
type Report struct {
	Platform string      `json:"platform"`
	Runs     []ReportRun `json:"runs"`
	// Serving holds the closed-loop serving-layer sweep (PR 4). Only
	// its deterministic per-job traffic fields participate in the perf
	// gate; wall-clock throughput and latency are informational.
	Serving []ServeRun `json:"serving,omitempty"`
	// TraceOverhead records the ring-collector cost study: span counts
	// gate exactly, the overhead percentage only against a loose cap.
	TraceOverhead *TraceOverheadRun `json:"trace_overhead,omitempty"`
	// Scale holds the 1k–32k-rank event-engine sweep. Virtual seconds
	// and traffic counts gate (optionally filtered to a rank ceiling so
	// the PR gate re-runs only the cheap prefix; the nightly job re-runs
	// all of it); wall seconds and engine diagnostics never gate.
	Scale []ScaleRun `json:"scale,omitempty"`
	// Load holds the open-loop trace-driven sweep with the autoscaler in
	// the loop (PR 9). Arrival counts, the zero-lost invariant and the
	// per-job traffic gate; the admission split, latency quantiles and
	// throughput are host-dependent and informational.
	Load []LoadRun `json:"load,omitempty"`
	// Stream holds the open-loop streaming-ingest sweep (PR 10). Block
	// and snapshot counts, the zero-lost invariant and the exact
	// per-snapshot message counts gate; fold/snapshot latency and
	// throughput are host-dependent and informational.
	Stream []StreamRun `json:"stream,omitempty"`
}

// ReportRun is one experiment point of a Report.
type ReportRun struct {
	Algo    string `json:"algo"`
	Tree    string `json:"tree,omitempty"`
	Sites   int    `json:"sites"`
	Procs   int    `json:"procs"`
	M       int    `json:"m"`
	N       int    `json:"n"`
	Domains int    `json:"domains_per_cluster,omitempty"`
	WantQ   bool   `json:"want_q"`
	NB      int    `json:"nb,omitempty"`
	NX      int    `json:"nx,omitempty"`
	Overlap bool   `json:"overlap,omitempty"`

	Seconds      float64 `json:"seconds"`
	Gflops       float64 `json:"gflops"`
	ModelSeconds float64 `json:"model_seconds"`
	ModelGflops  float64 `json:"model_gflops"`

	// Measured traffic, total and per link class.
	Msgs          int64   `json:"msgs"`
	Bytes         float64 `json:"bytes"`
	InterSiteMsgs int64   `json:"inter_site_msgs"`
	Flops         float64 `json:"flops"`

	// Critical-path decomposition (traced runs only). Steps are omitted:
	// the committed report records the breakdown, not the full walk.
	CriticalPath *telemetry.CriticalPath `json:"critical_path,omitempty"`
}

// ReportRun builds the record of one executed point.
func (r Run) report(m Measurement) ReportRun {
	total := m.Counters.Total()
	rr := ReportRun{
		Algo:    r.Algo.String(),
		Sites:   r.Sites,
		Procs:   r.Grid.Sites(r.Sites).Procs(),
		M:       r.M,
		N:       r.N,
		Domains: r.DomainsPerCluster,
		WantQ:   r.WantQ,
		NB:      r.NB,
		NX:      r.NX,
		Overlap: r.Overlap,

		Seconds:      m.Seconds,
		Gflops:       m.Gflops,
		ModelSeconds: m.ModelSeconds,
		ModelGflops:  m.ModelGflops,

		Msgs:          total.Msgs,
		Bytes:         total.Bytes,
		InterSiteMsgs: m.Counters.PerClass[grid.InterCluster].Msgs,
		Flops:         m.Counters.Flops,
	}
	if r.Algo == TSQR {
		rr.Tree = r.Tree.String()
	}
	if m.CriticalPath != nil {
		cp := *m.CriticalPath
		cp.Steps = nil
		rr.CriticalPath = &cp
	}
	return rr
}

// BuildReport executes every run (forcing Traced so critical paths are
// measured) and assembles the Report.
func BuildReport(platform string, runs []Run) Report {
	rep := Report{Platform: platform}
	for _, r := range runs {
		r.Traced = true
		rep.Runs = append(rep.Runs, r.report(Execute(r)))
	}
	return rep
}

// WriteJSON writes the report as indented JSON.
func (rep Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// StandardReportRuns is the canonical benchmark set the -json flag
// records: TSQR vs ScaLAPACK, one site vs all sites, at the paper's
// N = 64 with a medium M that keeps the run a few seconds; plus the
// overlap variants against their blocking twins (the lookahead pair
// runs at N = 256 with NB = NX = 32 so PDGEQRF actually performs block
// updates — at N = 64 it sits below the default crossover).
func StandardReportRuns(g *grid.Grid) []Run {
	m, n := 1<<20, 64
	all := len(g.Clusters)
	return []Run{
		{Grid: g, Sites: 1, M: m, N: n, Algo: TSQR, Tree: core.TreeGrid},
		{Grid: g, Sites: all, M: m, N: n, Algo: TSQR, Tree: core.TreeGrid},
		{Grid: g, Sites: 1, M: m, N: n, Algo: ScaLAPACK},
		{Grid: g, Sites: all, M: m, N: n, Algo: ScaLAPACK},
		{Grid: g, Sites: all, M: m, N: n, Algo: TSQR, Tree: core.TreeGrid, Overlap: true},
		{Grid: g, Sites: all, M: 1 << 18, N: 256, Algo: ScaLAPACK, NB: 32, NX: 32},
		{Grid: g, Sites: all, M: 1 << 18, N: 256, Algo: ScaLAPACK, NB: 32, NX: 32, Overlap: true},
	}
}
