package bench

import (
	"context"
	"strings"
	"testing"

	"gridqr/internal/grid"
	"gridqr/internal/perfmodel"
)

// TestStreamStudySmoke runs one ingest-rate point on a small grid and
// pins the accounting invariants: every scheduled block folds (zero
// lost), the snapshot count follows the fixed schedule, and per-snapshot
// traffic is exactly the reduction tree over the partition's running
// R's regardless of how folds interleaved with the barriers.
func TestStreamStudySmoke(t *testing.T) {
	g := grid.SmallTestGrid(4, 1, 2) // paired sites: 2 partitions of 4 ranks
	rows, err := StreamStudy(context.Background(), g, []float64{2000}, 40,
		StreamOptions{SnapshotEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	r := rows[0]
	if r.Blocks != 40 || r.Snapshots != 4 {
		t.Fatalf("blocks=%d snapshots=%d, want 40/4", r.Blocks, r.Snapshots)
	}
	if r.Lost != 0 {
		t.Errorf("lost %d accepted blocks", r.Lost)
	}
	if r.Procs != 4 {
		t.Errorf("partition size %d, want 4", r.Procs)
	}
	// A snapshot barrier over a 4-rank two-site partition is exactly the
	// static tree: 3 messages, 1 of them inter-site — no matter how many
	// folds shared the round.
	want := perfmodel.StreamSnapshotExact(ServeN, 4)
	if float64(r.MsgsPerSnapshot) != want.Msgs {
		t.Errorf("msgs/snapshot=%d, want %g", r.MsgsPerSnapshot, want.Msgs)
	}
	if r.InterSiteMsgsPerSnapshot != int64(perfmodel.TSQRExactCrossSite(2)) {
		t.Errorf("inter-site msgs/snapshot=%d, want 1", r.InterSiteMsgsPerSnapshot)
	}
	if r.BytesPerSnapshot != want.Volume {
		t.Errorf("bytes/snapshot=%g, want %g", r.BytesPerSnapshot, want.Volume)
	}
	if r.ThroughputBPS <= 0 {
		t.Errorf("throughput=%g, want positive", r.ThroughputBPS)
	}
	if out := FormatStream(g, rows); !strings.Contains(out, "msgs/snap") {
		t.Errorf("FormatStream missing header:\n%s", out)
	}
}

// TestStreamStudyCancel pins the ctx contract: cancellation stops the
// arrival process and the partial rows come back with ctx's error.
func TestStreamStudyCancel(t *testing.T) {
	g := grid.SmallTestGrid(2, 1, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rows, err := StreamStudy(ctx, g, []float64{100, 100}, 1000, StreamOptions{})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for _, r := range rows {
		if r.Lost != 0 {
			t.Errorf("canceled run lost %d blocks", r.Lost)
		}
	}
}
