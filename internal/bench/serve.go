package bench

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"time"

	"gridqr/internal/grid"
	"gridqr/internal/sched"
	"gridqr/internal/telemetry"
)

// Serving benchmark: a closed-loop load generator against the sched
// serving layer. C concurrent clients each submit a job, wait for its
// completion, and immediately submit the next one — the classic
// closed-loop harness, so the offered load is exactly C in-flight jobs
// and the sweep traces the throughput/latency curve as C grows past the
// partition count.
//
// The configuration is chosen for determinism: batching disabled and
// symmetric two-site partitions, so every job runs the identical TSQR
// reduction regardless of which partition serves it. Per-job message
// and byte counts are therefore exact invariants the perf gate can diff
// (wall-clock throughput and latency quantiles are recorded for the
// table but never gated — they measure the host, not the algorithm).

// Serving workload shape: M/(procs per partition) = 32 = N exactly, so
// each of the 128 ranks of a two-site partition holds one N×N leaf and
// a served job is a pure 127-message binary-tree reduction with exactly
// one inter-site message.
const (
	ServeM = 4096
	ServeN = 32
)

// StandardServeLoads is the closed-loop client sweep the -serve flag
// and the committed report run: below, at, and above the number of
// partitions.
var StandardServeLoads = []int{1, 2, 4, 8}

// ServeJobsPerClient is how many jobs each closed-loop client submits.
const ServeJobsPerClient = 8

// ErrDrainTimeout reports that in-flight jobs failed to complete within
// ServeOptions.DrainTimeout after a shutdown signal; gridbench exits
// nonzero exactly when it sees this error.
var ErrDrainTimeout = errors.New("bench: drain timeout: in-flight jobs did not complete")

// ServeRun is one offered-load point of the serving benchmark.
type ServeRun struct {
	Clients int   `json:"clients"`
	Jobs    int64 `json:"jobs"`

	// Wall-clock serving performance (host-dependent, never gated).
	ThroughputJPS float64 `json:"throughput_jobs_per_s"`
	P50Seconds    float64 `json:"p50_seconds"`
	P99Seconds    float64 `json:"p99_seconds"`
	P999Seconds   float64 `json:"p999_seconds"`
	// Queue-wait latency quantiles: how long jobs sat admitted but
	// undispatched — the backpressure signal of the SLO report.
	QueueP50Seconds float64 `json:"queue_p50_seconds"`
	QueueP99Seconds float64 `json:"queue_p99_seconds"`

	// Deterministic per-job traffic (gated against the baseline).
	MsgsPerJob          int64   `json:"msgs_per_job"`
	InterSiteMsgsPerJob int64   `json:"inter_site_msgs_per_job"`
	BytesPerJob         float64 `json:"bytes_per_job"`
}

// ServeOptions configures the sweep's observability and shutdown
// behavior; the zero value reproduces the plain benchmark.
type ServeOptions struct {
	// Logger is handed to every server for structured per-job lifecycle
	// records. Nil means silent.
	Logger *slog.Logger
	// TraceRing arms bounded ring-buffer tracing on each point's world.
	TraceRing *telemetry.RingConfig
	// OnPoint fires when a load point's server starts serving, giving
	// the monitoring endpoint the live server and registry to expose.
	OnPoint func(srv *sched.Server, reg *telemetry.Registry)
	// DrainTimeout bounds how long a canceled sweep waits for in-flight
	// jobs before giving up with ErrDrainTimeout (default 30s).
	DrainTimeout time.Duration
}

// servePlan pairs sites into partitions when the platform allows it, so
// every job crosses a site boundary; odd-sited platforms fall back to
// one partition per site.
func servePlan(g *grid.Grid) sched.Plan {
	if len(g.Clusters) >= 2 && len(g.Clusters)%2 == 0 {
		return sched.SiteGroups(g, 2)
	}
	return sched.PerSite(g)
}

// ServeStudy runs the closed-loop sweep: one fresh server per load
// point, C clients each submitting jobsPerClient TSQR jobs with
// distinct seeds. Cost-only worlds keep the 256-rank platform cheap
// while preserving exact message accounting. Canceling ctx stops
// clients from submitting further jobs; in-flight jobs are drained
// (bounded by DrainTimeout) and the rows finished so far are returned
// with ctx's error.
func ServeStudy(ctx context.Context, g *grid.Grid, loads []int, jobsPerClient int,
	opts ServeOptions) ([]ServeRun, error) {
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = 30 * time.Second
	}
	var out []ServeRun
	for _, c := range loads {
		row, err := serveOnePoint(ctx, g, c, jobsPerClient, opts)
		if err != nil {
			return out, err
		}
		out = append(out, row)
		if ctx.Err() != nil {
			return out, ctx.Err()
		}
	}
	return out, nil
}

func serveOnePoint(ctx context.Context, g *grid.Grid, clients, jobsPerClient int,
	opts ServeOptions) (ServeRun, error) {
	reg := telemetry.NewRegistry()
	srv := sched.Start(sched.Config{
		Grid:      g,
		Plan:      servePlan(g),
		QueueCap:  clients, // closed loop: at most `clients` jobs in flight
		MaxBatch:  1,       // batching off — per-job counters must be invariant
		CostOnly:  true,
		Registry:  reg,
		Logger:    opts.Logger,
		TraceRing: opts.TraceRing,
	})
	defer srv.Close()
	if opts.OnPoint != nil {
		opts.OnPoint(srv, reg)
	}

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		completed int64
		totals    struct {
			msgs, inter int64
			bytes       float64
		}
		firstErr error
	)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			for i := 0; i < jobsPerClient && ctx.Err() == nil; i++ {
				j, err := srv.Submit(sched.JobSpec{
					Kind: sched.KindTSQR, M: ServeM, N: ServeN,
					Seed: int64(1 + client*jobsPerClient + i),
				})
				if err == nil {
					// Drain discipline: once submitted, always wait the
					// job out — shutdown never abandons an accepted job.
					<-j.Done()
					res := j.Result()
					err = res.Err
					if err == nil {
						mu.Lock()
						completed++
						totals.msgs += res.Counters.Total().Msgs
						totals.bytes += res.Counters.Total().Bytes
						totals.inter += res.Counters.Inter().Msgs
						mu.Unlock()
					}
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}(c)
	}

	drained := make(chan struct{})
	go func() { wg.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-ctx.Done():
		select {
		case <-drained:
		case <-time.After(opts.DrainTimeout):
			return ServeRun{}, fmt.Errorf("%w (load point %d clients)", ErrDrainTimeout, clients)
		}
	}
	elapsed := time.Since(start)
	if firstErr != nil {
		return ServeRun{}, fmt.Errorf("bench: serving benchmark job failed: %w", firstErr)
	}

	slo := srv.SLO()
	row := ServeRun{
		Clients:         clients,
		Jobs:            completed,
		ThroughputJPS:   float64(completed) / elapsed.Seconds(),
		P50Seconds:      slo.Latency.P50,
		P99Seconds:      slo.Latency.P99,
		P999Seconds:     slo.Latency.P999,
		QueueP50Seconds: slo.QueueWait.P50,
		QueueP99Seconds: slo.QueueWait.P99,
	}
	if completed > 0 {
		row.MsgsPerJob = totals.msgs / completed
		row.InterSiteMsgsPerJob = totals.inter / completed
		row.BytesPerJob = totals.bytes / float64(completed)
	}
	return row, nil
}

// BuildServingRuns executes the standard serving sweep for the
// committed report; benchmark-report generation has no cancellation
// path, so errors (none expected without faults) panic as before.
func BuildServingRuns(g *grid.Grid) []ServeRun {
	rows, err := ServeStudy(context.Background(), g, StandardServeLoads,
		ServeJobsPerClient, ServeOptions{})
	if err != nil {
		panic(err)
	}
	return rows
}

// FormatServe renders the sweep as the throughput-vs-offered-load table,
// latency quantiles included (p50/p99/p999 end-to-end, p99 queue wait).
func FormatServe(g *grid.Grid, rows []ServeRun) string {
	var b strings.Builder
	plan := servePlan(g)
	fmt.Fprintf(&b, "== Serving layer: closed-loop TSQR jobs (M=%d, N=%d, %d partitions × %d ranks) ==\n",
		ServeM, ServeN, len(plan.Groups), len(plan.Groups[0]))
	fmt.Fprintf(&b, "%8s %6s %12s %10s %10s %10s %10s %10s %12s %14s\n",
		"clients", "jobs", "jobs/s", "p50 (s)", "p99 (s)", "p999 (s)", "qp99 (s)",
		"msgs/job", "inter/job", "bytes/job")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %6d %12.1f %10.2g %10.2g %10.2g %10.2g %10d %12d %14.4g\n",
			r.Clients, r.Jobs, r.ThroughputJPS, r.P50Seconds, r.P99Seconds, r.P999Seconds,
			r.QueueP99Seconds, r.MsgsPerJob, r.InterSiteMsgsPerJob, r.BytesPerJob)
	}
	return b.String()
}
