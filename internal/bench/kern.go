package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"testing"

	"gridqr/internal/blas"
	"gridqr/internal/flops"
	"gridqr/internal/lapack"
	"gridqr/internal/matrix"
)

// Wall-clock kernel benchmarks and their CI regression gate. Unlike the
// simulated gridbench numbers (exact, machine-independent, gated by
// CompareReports), these measure the real BLAS/LAPACK kernels on the
// runner, so the gate is deliberately loose: it fails only when a kernel
// gets more than ~30% slower than the committed results/KERNBENCH.json —
// enough slack for runner noise, tight enough to catch an accidental
// fall off the packed GEMM fast path.

// KernResult is one kernel benchmark measurement.
type KernResult struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	Gflops  float64 `json:"gflops"` // 0 when no flop count applies
}

// KernReport is the JSON document committed as results/KERNBENCH.json.
type KernReport struct {
	Procs   int          `json:"procs"` // GOMAXPROCS the numbers were taken at
	Results []KernResult `json:"results"`
}

// kernCase is one entry of the standard kernel set: a name, a flop count
// for the Gflop/s column, and a body run b.N times by testing.Benchmark.
type kernCase struct {
	name  string
	flops float64
	run   func(b *testing.B)
}

// kernSet builds the standard kernel benchmarks: the square and
// tall-skinny GEMM shapes the factorizations spend their time in, the
// triangular solve, and the blocked Householder panel factorization.
func kernSet() []kernCase {
	var cases []kernCase

	for _, n := range []int{256, 512} {
		n := n
		a := matrix.Random(n, n, 1)
		b2 := matrix.Random(n, n, 2)
		c := matrix.New(n, n)
		cases = append(cases, kernCase{
			name:  fmt.Sprintf("dgemm_%d", n),
			flops: flops.GEMM(n, n, n),
			run: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					blas.Dgemm(blas.NoTrans, blas.NoTrans, 1, a, b2, 0, c)
				}
			},
		})
	}

	{
		m, n := 16384, 64
		a := matrix.Random(m, n, 3)
		b2 := matrix.Random(n, n, 4)
		c := matrix.New(m, n)
		cases = append(cases, kernCase{
			name:  fmt.Sprintf("dgemm_tall_%dx%d", m, n),
			flops: flops.GEMM(m, n, n),
			run: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					blas.Dgemm(blas.NoTrans, blas.NoTrans, 1, a, b2, 0, c)
				}
			},
		})
	}

	{
		n, m := 64, 1024
		u := matrix.Random(n, n, 5)
		for i := 0; i < n; i++ {
			u.Set(i, i, float64(n)+u.At(i, i))
		}
		rhs := matrix.Random(m, n, 6)
		work := matrix.New(m, n)
		cases = append(cases, kernCase{
			name:  fmt.Sprintf("dtrsm_right_%dx%d", m, n),
			flops: flops.TRSM(n, m, false),
			run: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					matrix.Copy(work, rhs)
					blas.Dtrsm(blas.Right, blas.NoTrans, false, 1, u, work)
				}
			},
		})
	}

	{
		m, n, nb := 4096, 64, 32
		a := matrix.Random(m, n, 7)
		work := matrix.New(m, n)
		tau := make([]float64, n)
		cases = append(cases, kernCase{
			name:  fmt.Sprintf("dgeqrf_%dx%d", m, n),
			flops: flops.GEQRF(m, n),
			run: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					matrix.Copy(work, a)
					lapack.Dgeqrf(work, tau, nb)
				}
			},
		})
	}

	// The level-2 kernels the panel factorizations lean on, at the tall
	// panel shape: a fall off the 4-column AVX2 path shows up here before
	// it shows up (diluted) in dgeqrf.
	{
		m, n := 4096, 64
		a := matrix.Random(m, n, 8)
		x := matrix.Random(m, 1, 9).Col(0)
		y := make([]float64, n)
		cases = append(cases, kernCase{
			name:  fmt.Sprintf("dgemv_%dx%d", m, n),
			flops: flops.GEMM(m, n, 1),
			run: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					blas.Dgemv(blas.Trans, 1, a, x, 0, y)
				}
			},
		})
	}

	{
		m, n := 4096, 64
		a := matrix.Random(m, n, 10)
		x := matrix.Random(m, 1, 11).Col(0)
		y := matrix.Random(n, 1, 12).Col(0)
		cases = append(cases, kernCase{
			name:  fmt.Sprintf("dger_%dx%d", m, n),
			flops: flops.GEMM(m, n, 1),
			run: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					blas.Dger(1e-7, x, y, a)
				}
			},
		})
	}

	// The TSQR reduction kernel at the paper's default panel width.
	{
		n := 64
		r1 := matrix.Random(n, n, 13)
		r2 := matrix.Random(n, n, 14)
		for j := 0; j < n; j++ {
			for i := j + 1; i < n; i++ {
				r1.Set(i, j, 0)
				r2.Set(i, j, 0)
			}
		}
		f1 := matrix.New(n, n)
		f2 := matrix.New(n, n)
		tau := make([]float64, n)
		cases = append(cases, kernCase{
			name:  fmt.Sprintf("stackqr_n%d", n),
			flops: flops.TPQRT2(n),
			run: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					matrix.Copy(f1, r1)
					matrix.Copy(f2, r2)
					lapack.Dtpqrt2(f1, f2, tau)
				}
			},
		})
	}

	return cases
}

// RunKernBench measures the standard kernel set with the testing
// package's benchmark harness (which picks b.N for stable timings) and
// returns one result per kernel.
func RunKernBench() []KernResult {
	cases := kernSet()
	results := make([]KernResult, 0, len(cases))
	for _, kc := range cases {
		r := testing.Benchmark(kc.run)
		ns := float64(r.NsPerOp())
		res := KernResult{Name: kc.name, NsPerOp: ns}
		if kc.flops > 0 && ns > 0 {
			res.Gflops = kc.flops / ns
		}
		results = append(results, res)
	}
	return results
}

// ReadKernReport parses a committed kernel baseline.
func ReadKernReport(r io.Reader) (KernReport, error) {
	var rep KernReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return KernReport{}, fmt.Errorf("bench: bad kernel baseline: %w", err)
	}
	return rep, nil
}

// CompareKern diffs measured kernel timings against the committed
// baseline: a kernel fails only when it is slower than baseline by more
// than the relative tolerance (faster is always fine, and baseline
// entries missing from the measurement fail — a silently dropped kernel
// must not pass). Extra measured kernels are allowed so new entries can
// land before the baseline is regenerated.
func CompareKern(got []KernResult, want KernReport, tol float64) []string {
	byName := make(map[string]KernResult, len(got))
	for _, r := range got {
		byName[r.Name] = r
	}
	var diffs []string
	for _, w := range want.Results {
		g, ok := byName[w.Name]
		if !ok {
			diffs = append(diffs, fmt.Sprintf("%s: present in baseline but not measured", w.Name))
			continue
		}
		if limit := w.NsPerOp * (1 + tol); g.NsPerOp > limit {
			diffs = append(diffs, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (>%.0f%% regression)",
				w.Name, g.NsPerOp, w.NsPerOp, tol*100))
		}
	}
	return diffs
}
