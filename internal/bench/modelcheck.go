package bench

import (
	"fmt"
	"math"
	"strings"

	"gridqr/internal/core"
	"gridqr/internal/grid"
)

// ModelAccuracy quantifies how well the Section IV analytic model
// predicts the simulator across the paper's parameter space: the
// distribution of relative errors |model − simulated| / simulated over a
// (N, M, sites) sweep for both algorithms.
type ModelAccuracy struct {
	Algo              Algorithm
	Points            int
	MeanErr, WorstErr float64
	// Worst point's coordinates.
	WorstN, WorstM, WorstSites int
}

// CheckModel sweeps a compact subset of the Figure 4/5 space and reports
// the model error statistics per algorithm.
func CheckModel(g *grid.Grid) []ModelAccuracy {
	ns := []int{64, 256}
	ms := []int{1 << 18, 1 << 21, 1 << 23}
	var out []ModelAccuracy
	for _, algo := range []Algorithm{TSQR, ScaLAPACK} {
		acc := ModelAccuracy{Algo: algo}
		var sum float64
		for _, n := range ns {
			for _, m := range ms {
				for _, sites := range []int{1, 2, 4} {
					if sites > len(g.Clusters) {
						continue
					}
					r := Run{Grid: g, Sites: sites, M: m, N: n, Algo: algo, Tree: core.TreeGrid}
					if algo == TSQR {
						r.DomainsPerCluster = 0
					}
					meas := Execute(r)
					err := math.Abs(meas.ModelSeconds-meas.Seconds) / meas.Seconds
					sum += err
					acc.Points++
					if err > acc.WorstErr {
						acc.WorstErr = err
						acc.WorstN, acc.WorstM, acc.WorstSites = n, m, sites
					}
				}
			}
		}
		acc.MeanErr = sum / float64(acc.Points)
		out = append(out, acc)
	}
	return out
}

// FormatModelCheck renders the accuracy report.
func FormatModelCheck(rows []ModelAccuracy) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Section IV model vs simulator: relative time error over the sweep ==\n")
	fmt.Fprintf(&b, "%-10s %8s %12s %12s %30s\n", "algorithm", "points", "mean err", "worst err", "worst point (N, M, sites)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8d %11.1f%% %11.1f%%      N=%d M=%d sites=%d\n",
			r.Algo, r.Points, 100*r.MeanErr, 100*r.WorstErr, r.WorstN, r.WorstM, r.WorstSites)
	}
	return b.String()
}

// CrossoverM finds, by bisection over the simulator, the matrix height at
// which using all sites of the grid first beats a single site for the
// given algorithm and width — the quantity behind the paper's "for very
// tall matrices (M > 5·10⁶) the use of multiple sites eventually speeds
// up the performance". Returns (crossover, true) or (0, false) if the
// multi-site run already wins at lo or still loses at hi.
func CrossoverM(g *grid.Grid, algo Algorithm, n int, lo, hi int) (int, bool) {
	sites := len(g.Clusters)
	better := func(m int) bool {
		multi := Execute(Run{Grid: g, Sites: sites, M: m, N: n, Algo: algo, Tree: core.TreeGrid})
		single := Execute(Run{Grid: g, Sites: 1, M: m, N: n, Algo: algo, Tree: core.TreeGrid})
		return multi.Seconds < single.Seconds
	}
	if better(lo) || !better(hi) {
		return 0, false
	}
	for hi-lo > lo/64+1 { // ~1.5% resolution
		mid := lo + (hi-lo)/2
		if better(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true
}
