package bench

import (
	"fmt"
	"time"

	"gridqr/internal/core"
	"gridqr/internal/grid"
	"gridqr/internal/mpi"
	"gridqr/internal/perfmodel"
	"gridqr/internal/scalapack"
	"gridqr/internal/telemetry"
	"gridqr/internal/topology"
)

// The 1k–32k-rank scale study: the paper's Fig. 4–8 questions re-asked at
// rank counts three orders of magnitude beyond the Grid'5000 testbed,
// runnable only because the cost-only worlds execute on the event-driven
// engine (O(active events) scheduling instead of 32k live threads). The
// platform is synthetic (grid.Synthetic): 2 continents × 2 sites each,
// nodes scaled so 8 processes per node yields the requested rank count.

// ScaleRankCounts is the standard sweep: 1k, 4k, 16k and 32k ranks.
var ScaleRankCounts = []int{1024, 4096, 16384, 32768}

// ScaleTrees are the reduction-tree shapes compared at scale. The
// shuffled binomial models randomly-placed ranks (every level of the
// hierarchy misaligned); the flat tree and ScaLAPACK join only up to
// ScaleScaLAPACKCap ranks — the flat tree's virtual time is off the
// chart past 4k, and PDGEQR2 sends 2(P−1) messages per column.
var ScaleTrees = []core.Tree{core.TreeGrid, core.TreeBinary, core.TreeMultiLevel,
	core.TreeBinaryShuffled, core.TreeFlat}

// ScaleScaLAPACKCap bounds the rank count of the ScaLAPACK and flat-tree
// scale points.
const ScaleScaLAPACKCap = 4096

// ScaleN is the panel width of every scale point (the paper's N = 64).
const ScaleN = 64

// scaleRowsPerRank keeps the matrix shape constant across rank counts
// (weak scaling): M = ranks × 256, so every rank holds a 256×64 block.
const scaleRowsPerRank = 256

// ScalePlatform builds the synthetic platform for a rank count: two
// continents of unequal weight (1 site + 3 sites) × (ranks/32) nodes per
// site × 8 processes per node. Ranks must be a multiple of 32. The
// asymmetry is deliberate: on a fully uniform power-of-two platform the
// rank-major binomial tree aligns with every hierarchy level and all
// topology-aware trees coincide with it; the uneven continent split is
// what separates the multi-level tree (continents−1 = 1 inter-continental
// message) from the two-level grid tree (whose cross-site binomial pays
// several).
func ScalePlatform(ranks int) *grid.Grid {
	if ranks%32 != 0 {
		panic(fmt.Sprintf("bench: scale rank count %d not a multiple of 32", ranks))
	}
	return grid.SyntheticHier([]int{1, 3}, ranks/32, 8)
}

// ScaleRun is one point of the scale sweep, the Report.Scale record the
// perf gate diffs. Virtual seconds and traffic counts are deterministic
// (the event engine dispatches in a fixed total order); wall seconds and
// engine statistics are informational.
type ScaleRun struct {
	Algo  string `json:"algo"`
	Tree  string `json:"tree,omitempty"`
	Ranks int    `json:"ranks"`
	M     int    `json:"m"`
	N     int    `json:"n"`

	Seconds      float64 `json:"seconds"`
	ModelSeconds float64 `json:"model_seconds"`

	Msgs          int64   `json:"msgs"`
	Bytes         float64 `json:"bytes"`
	InterSiteMsgs int64   `json:"inter_site_msgs"`
	// InterContinentMsgs counts messages whose endpoints sit on different
	// continents (derived from the traced per-site communication matrix;
	// TSQR points only — ScaLAPACK points are not traced and record -1).
	// This is the structural win the multi-level tree is after: exactly
	// continents−1, where flatter trees pay more over the slowest links.
	InterContinentMsgs int64 `json:"inter_continent_msgs"`

	// Engine diagnostics, never gated: which engine ran the world, the
	// peak number of undelivered messages (the O(active events) bound the
	// engine exists to enforce), and host wall-clock time.
	Engine          string  `json:"engine"`
	PeakPendingMsgs int64   `json:"peak_pending_msgs"`
	WallSeconds     float64 `json:"wall_seconds"`
}

// ScalePoint executes one scale point in cost-only mode and returns its
// record plus the world's engine statistics (for memory-bound tests).
func ScalePoint(ranks int, algo Algorithm, tree core.Tree) (ScaleRun, mpi.EngineStats) {
	g := ScalePlatform(ranks)
	m := ranks * scaleRowsPerRank
	opts := []mpi.Option{mpi.CostOnly()}
	// TSQR points are traced so the per-site communication matrix can
	// attribute traffic to continent crossings (cheap: O(ranks) spans).
	// ScaLAPACK is left untraced — its 2(P−1) messages per column would
	// make the trace the dominant memory cost of the sweep.
	traced := algo == TSQR
	if traced {
		opts = append(opts, mpi.Traced())
	}
	w := mpi.NewWorld(g, opts...)
	offsets := scalapack.BlockOffsets(m, ranks)
	start := time.Now()
	w.Run(func(ctx *mpi.Ctx) {
		comm := mpi.WorldComm(ctx)
		switch algo {
		case TSQR:
			core.Factorize(comm, core.Input{M: m, N: ScaleN, Offsets: offsets},
				core.Config{Tree: tree})
		case ScaLAPACK:
			scalapack.PDGEQR2(comm, scalapack.Input{M: m, N: ScaleN, Offsets: offsets})
		}
	})
	wall := time.Since(start).Seconds()
	interCont := int64(-1)
	if traced {
		cm := telemetry.BuildCommMatrix(w.Trace())
		interCont = 0
		for i := range cm.Msgs {
			for j := range cm.Msgs[i] {
				if g.ContinentOf(i) != g.ContinentOf(j) {
					interCont += cm.Msgs[i][j]
				}
			}
		}
	}
	total := w.Counters().Total()
	stats := w.EngineStats()
	pred := perfmodel.Predictor{G: g}
	var model float64
	switch {
	case algo == ScaLAPACK:
		model = pred.ScaLAPACKTime(m, ScaleN, false)
	case tree == core.TreeMultiLevel:
		model = pred.TSQRTimeMultiLevel(m, ScaleN, false)
	default:
		model = pred.TSQRTime(m, ScaleN, false)
	}
	sr := ScaleRun{
		Algo:  algo.String(),
		Ranks: ranks,
		M:     m,
		N:     ScaleN,

		Seconds:      w.MaxClock(),
		ModelSeconds: model,

		Msgs:               total.Msgs,
		Bytes:              total.Bytes,
		InterSiteMsgs:      w.Counters().PerClass[grid.InterCluster].Msgs,
		InterContinentMsgs: interCont,

		Engine:          stats.Engine,
		PeakPendingMsgs: int64(stats.PeakPending),
		WallSeconds:     wall,
	}
	if algo == TSQR {
		sr.Tree = tree.String()
	}
	return sr, stats
}

// ScaleStudy runs the sweep over every rank count up to maxRanks
// (0 = the full ScaleRankCounts) for the given trees (nil = ScaleTrees),
// plus the ScaLAPACK reference up to ScaleScaLAPACKCap.
func ScaleStudy(maxRanks int, trees []core.Tree) []ScaleRun {
	if trees == nil {
		trees = ScaleTrees
	}
	var out []ScaleRun
	for _, ranks := range ScaleRankCounts {
		if maxRanks > 0 && ranks > maxRanks {
			continue
		}
		for _, tree := range trees {
			if tree == core.TreeFlat && ranks > ScaleScaLAPACKCap {
				continue
			}
			sr, _ := ScalePoint(ranks, TSQR, tree)
			out = append(out, sr)
		}
		if ranks <= ScaleScaLAPACKCap {
			sr, _ := ScalePoint(ranks, ScaLAPACK, core.TreeGrid)
			out = append(out, sr)
		}
	}
	return out
}

// ScaleCrossovers reports, per rank count, the fastest TSQR tree — the
// headline of the sweep: where the multi-level tree overtakes the paper's
// two-level tuned tree as the hierarchy deepens.
func ScaleCrossovers(runs []ScaleRun) map[int]string {
	best := map[int]string{}
	bestT := map[int]float64{}
	for _, r := range runs {
		if r.Algo != TSQR.String() {
			continue
		}
		if t, ok := bestT[r.Ranks]; !ok || r.Seconds < t {
			bestT[r.Ranks] = r.Seconds
			best[r.Ranks] = r.Tree
		}
	}
	return best
}

// FormatScale renders the sweep as a text table, one row per point,
// with the per-rank-count winner marked.
func FormatScale(runs []ScaleRun) string {
	if len(runs) == 0 {
		return "== Scale sweep: no points ==\n"
	}
	best := ScaleCrossovers(runs)
	h := topology.HierarchyOf(ScalePlatform(runs[0].Ranks))
	out := fmt.Sprintf("== Scale sweep: synthetic %d-continent platform (hierarchy %s at %d ranks), N=%d ==\n",
		h.Continents, h, runs[0].Ranks, ScaleN)
	out += fmt.Sprintf("%7s  %-10s  %-15s  %14s  %14s  %10s  %12s  %11s  %9s\n",
		"ranks", "algo", "tree", "virtual s", "model s", "msgs", "inter-site", "inter-cont", "wall s")
	for _, r := range runs {
		mark := ""
		if r.Algo == TSQR.String() && best[r.Ranks] == r.Tree {
			mark = "  << fastest tree"
		}
		cont := fmt.Sprintf("%11d", r.InterContinentMsgs)
		if r.InterContinentMsgs < 0 {
			cont = fmt.Sprintf("%11s", "-")
		}
		out += fmt.Sprintf("%7d  %-10s  %-15s  %14.6f  %14.6f  %10d  %12d  %s  %9.3f%s\n",
			r.Ranks, r.Algo, r.Tree, r.Seconds, r.ModelSeconds, r.Msgs, r.InterSiteMsgs,
			cont, r.WallSeconds, mark)
	}
	return out
}
