package bench

import (
	"bytes"
	"strings"
	"testing"

	"gridqr/internal/core"
	"gridqr/internal/grid"
)

// TestOverlapStudy runs the ablation on a small multi-site grid and
// checks the claims the committed table rests on: identical traffic
// within each blocking/overlap pair, and strictly less measured wait and
// makespan for the overlap variants.
func TestOverlapStudy(t *testing.T) {
	g := grid.SmallTestGrid(4, 2, 1)
	rows := OverlapStudy(g, 1<<18, 64, 1<<16, 256, 32)
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, pair := range [][2]OverlapRow{{rows[0], rows[1]}, {rows[2], rows[3]}} {
		block, over := pair[0], pair[1]
		if block.Overlap || !over.Overlap || block.Algo != over.Algo {
			t.Fatalf("pair structure wrong: %+v / %+v", block, over)
		}
		if block.TotalMsgs != over.TotalMsgs || block.InterMsgs != over.InterMsgs {
			t.Errorf("%s: overlap changed traffic: %d/%d msgs vs %d/%d",
				block.Algo, over.TotalMsgs, over.InterMsgs, block.TotalMsgs, block.InterMsgs)
		}
		if over.Seconds >= block.Seconds {
			t.Errorf("%s: overlap %gs not below blocking %gs", block.Algo, over.Seconds, block.Seconds)
		}
		if over.TotalWait >= block.TotalWait {
			t.Errorf("%s: overlap wait %gs not below blocking %gs", block.Algo, over.TotalWait, block.TotalWait)
		}
	}
	// The TSQR win is specifically on the inter-site critical path.
	if rows[1].InterSiteWait >= rows[0].InterSiteWait {
		t.Errorf("TSQR: overlapped inter-site wait %gs not below blocking %gs",
			rows[1].InterSiteWait, rows[0].InterSiteWait)
	}
	out := FormatOverlap(1<<18, 64, 1<<16, 256, 32, rows)
	for _, want := range []string{"TSQR blocking", "TSQR overlapped", "ScaLAPACK lookahead", "inter wait (s)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

// TestReportRoundTripAndCompare: the perf gate passes a report against
// itself after a JSON round trip, and flags every class of drift.
func TestReportRoundTripAndCompare(t *testing.T) {
	g := grid.SmallTestGrid(2, 2, 1)
	rep := BuildReport("test", []Run{
		{Grid: g, Sites: 2, M: 1 << 14, N: 16, Algo: TSQR, Tree: core.TreeGrid},
		{Grid: g, Sites: 2, M: 1 << 14, N: 16, Algo: TSQR, Tree: core.TreeGrid, Overlap: true},
		{Grid: g, Sites: 2, M: 1 << 14, N: 32, Algo: ScaLAPACK, NB: 8, NX: 8},
	})
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := CompareReports(rep, want, Tolerances{}); len(diffs) != 0 {
		t.Fatalf("self-comparison drifted:\n%s", strings.Join(diffs, "\n"))
	}

	// Each perturbation must surface as exactly one drift line.
	perturb := []func(r *ReportRun){
		func(r *ReportRun) { r.Msgs++ },
		func(r *ReportRun) { r.InterSiteMsgs++ },
		func(r *ReportRun) { r.Bytes *= 1.01 },
		func(r *ReportRun) { r.Flops *= 1.01 },
		func(r *ReportRun) { r.Seconds *= 1.01 },
	}
	for i, p := range perturb {
		w := want
		w.Runs = append([]ReportRun(nil), want.Runs...)
		p(&w.Runs[0])
		if diffs := CompareReports(rep, w, Tolerances{}); len(diffs) != 1 {
			t.Errorf("perturbation %d: %d drifts, want 1: %v", i, len(diffs), diffs)
		}
	}

	// A baseline run the measurement no longer covers fails the gate …
	got := rep
	got.Runs = rep.Runs[1:]
	if diffs := CompareReports(got, want, Tolerances{}); len(diffs) != 1 ||
		!strings.Contains(diffs[0], "not measured") {
		t.Errorf("dropped run not flagged: %v", diffs)
	}
	// … while extra measured runs (new benchmarks) are allowed.
	w := want
	w.Runs = want.Runs[:2]
	if diffs := CompareReports(rep, w, Tolerances{}); len(diffs) != 0 {
		t.Errorf("extra measured run flagged: %v", diffs)
	}
}

// TestReadReportRejectsGarbage guards the gate's error path.
func TestReadReportRejectsGarbage(t *testing.T) {
	if _, err := ReadReport(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}
