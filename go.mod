module gridqr

go 1.22
