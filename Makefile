GO ?= go

.PHONY: build test race vet fmt-check check fuzz bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The runtime (incl. fault injection), the TSQR/FT-TSQR paths and the
# lock-free telemetry registry must be race-clean; short mode keeps this
# fast enough for every commit.
race:
	$(GO) test -race -short ./internal/mpi ./internal/core ./internal/telemetry

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: build vet fmt-check test race

fuzz:
	$(GO) test -fuzz=FuzzHouseholderQR -fuzztime=15s ./internal/lapack

bench:
	$(GO) test -bench=. -benchmem ./...
