GO ?= go

.PHONY: build test race vet fmt-check check fuzz bench perfgate baseline

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The runtime (incl. fault injection and nonblocking requests), the
# TSQR/FT-TSQR paths, the lookahead ScaLAPACK variant, the lock-free
# telemetry registry and the concurrent job scheduler must be
# race-clean; short mode keeps this fast enough for every commit.
race:
	$(GO) test -race -short ./internal/mpi ./internal/core ./internal/scalapack ./internal/telemetry ./internal/sched

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: build vet fmt-check test race

# Perf-regression gate: re-run the standard benchmark set and fail on
# any drift from the committed baseline (message/flop counts exact,
# bytes and simulated seconds within tight relative tolerance).
BASELINE ?= results/BENCH_4.json

perfgate:
	$(GO) run ./cmd/gridbench -baseline $(BASELINE)

# Regenerate the committed baseline after an intentional change to the
# algorithms' communication or computation structure.
baseline:
	$(GO) run ./cmd/gridbench -json $(BASELINE)

fuzz:
	$(GO) test -fuzz=FuzzHouseholderQR -fuzztime=15s ./internal/lapack
	$(GO) test -fuzz=FuzzAdmission -fuzztime=15s ./internal/sched

bench:
	$(GO) test -bench=. -benchmem ./...
