GO ?= go

.PHONY: build test race vet fmt-check check fuzz bench perfgate baseline

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The runtime (incl. fault injection and nonblocking requests), the
# TSQR/FT-TSQR paths, the lookahead ScaLAPACK variant and the lock-free
# telemetry registry must be race-clean; short mode keeps this fast
# enough for every commit.
race:
	$(GO) test -race -short ./internal/mpi ./internal/core ./internal/scalapack ./internal/telemetry

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: build vet fmt-check test race

# Perf-regression gate: re-run the standard benchmark set and fail on
# any drift from the committed baseline (message/flop counts exact,
# bytes and simulated seconds within tight relative tolerance).
BASELINE ?= results/BENCH_3.json

perfgate:
	$(GO) run ./cmd/gridbench -baseline $(BASELINE)

# Regenerate the committed baseline after an intentional change to the
# algorithms' communication or computation structure.
baseline:
	$(GO) run ./cmd/gridbench -json $(BASELINE)

fuzz:
	$(GO) test -fuzz=FuzzHouseholderQR -fuzztime=15s ./internal/lapack

bench:
	$(GO) test -bench=. -benchmem ./...
