GO ?= go

.PHONY: build test race vet fmt-check check fuzz bench perfgate baseline benchkern baseline-kern scale stream stream-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The runtime (incl. fault injection and nonblocking requests), the
# TSQR/FT-TSQR paths, the lookahead ScaLAPACK variant, the lock-free
# telemetry registry, the concurrent job scheduler and the packed GEMM
# engine's worker pool must be race-clean; short mode keeps this fast
# enough for every commit.
race:
	$(GO) test -race -short ./internal/mpi ./internal/core ./internal/scalapack ./internal/telemetry ./internal/sched ./internal/blas ./internal/elastic ./internal/monitor ./internal/stream

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: build vet fmt-check test race

# Perf-regression gate: re-run the standard benchmark set and fail on
# any drift from the committed baseline (message/flop counts exact,
# bytes and simulated seconds within tight relative tolerance). The
# committed scale sweep is gated up to SCALE_MAX_RANKS ranks; the
# nightly job sets 0 to re-run the full 32k sweep.
BASELINE ?= results/BENCH_10.json
SCALE_MAX_RANKS ?= 4096

perfgate:
	$(GO) run ./cmd/gridbench -baseline $(BASELINE) -scale-max-ranks $(SCALE_MAX_RANKS)

# Cost-only scale smoke: the 4k-rank event-engine sweep plus the scale
# test suite, the same check the CI `scale` job runs under a wall-clock
# budget (see .github/workflows/ci.yml).
scale:
	$(GO) run ./cmd/gridbench -scale -ranks 4096
	$(GO) test -run 'TestScale' -v ./internal/bench

# Open-loop streaming-ingest study: the full ingest-rate ladder with
# snapshot barriers on schedule (the EXPERIMENTS.md table).
stream:
	$(GO) run ./cmd/gridbench -stream

# Bounded ingest plus the snapshot-equivalence tests — the CI `stream`
# job. -count=1 defeats the test cache so the bitwise fold-vs-one-shot
# contract genuinely re-executes.
stream-smoke:
	$(GO) run ./cmd/gridbench -stream -quick
	$(GO) test -count=1 -run 'TestStreamIncrementalMatchesOneShot|TestStreamSnapshotExactCounts|TestRoundIncrementalEqualsOneShot|TestFolderGranularityInvariance|TestOutOfCoreBitwise' ./internal/sched ./internal/stream

# Regenerate the committed baseline after an intentional change to the
# algorithms' communication or computation structure.
baseline:
	$(GO) run ./cmd/gridbench -json $(BASELINE)

fuzz:
	$(GO) test -fuzz=FuzzHouseholderQR -fuzztime=15s ./internal/lapack
	$(GO) test -fuzz=FuzzDtpqrt2 -fuzztime=15s ./internal/lapack
	$(GO) test -fuzz=FuzzAdmission -fuzztime=15s ./internal/sched
	$(GO) test -fuzz=FuzzDgemm -fuzztime=15s ./internal/blas
	$(GO) test -fuzz=FuzzDgemv -fuzztime=15s ./internal/blas
	$(GO) test -fuzz=FuzzDger -fuzztime=15s ./internal/blas
	$(GO) test -fuzz=FuzzDtrsm -fuzztime=15s ./internal/blas
	$(GO) test -fuzz=FuzzTraceReplay -fuzztime=15s ./internal/elastic
	$(GO) test -fuzz=FuzzIncrementalFold -fuzztime=15s ./internal/stream

bench:
	$(GO) test -bench=. -benchmem ./...

# Wall-clock kernel gate: re-time the BLAS/LAPACK kernel set at a pinned
# GOMAXPROCS and fail only on a >30% slowdown against the committed
# results/KERNBENCH.json — loose enough for runner noise, tight enough
# to catch a fall off the packed-GEMM fast path.
KERNBASE ?= results/KERNBENCH.json

benchkern:
	$(GO) run ./cmd/kernbench -procs 1 -baseline $(KERNBASE)

# Refresh the committed kernel baseline after an intentional kernel
# change (run on a quiet machine).
baseline-kern:
	$(GO) run ./cmd/kernbench -procs 1 -json $(KERNBASE)
