// Package gridqr is a pure-Go reproduction of "QR Factorization of Tall
// and Skinny Matrices in a Grid Computing Environment" (Agullo, Coti,
// Dongarra, Herault, Langou — IPDPS 2010, arXiv:0912.2572): the QCG-TSQR
// algorithm, its ScaLAPACK-style baseline, the topology middleware, a
// virtual-time grid simulator calibrated to Grid'5000, and the complete
// experiment harness that regenerates the paper's tables and figures.
//
// The root package holds only the top-level benchmarks; see README.md for
// the architecture map and internal/* for the library packages:
//
//   - internal/core — QCG-TSQR and the communication-avoiding extensions
//     (CAQR, TSLU, CALU, Cholesky, CholeskyQR, MGS)
//   - internal/scalapack — the PDGEQR2/PDGEQRF baseline
//   - internal/mpi — the message-passing runtime (real + virtual time)
//   - internal/topology — JobProfile meta-scheduling (QCG-OMPI analog)
//   - internal/bench — the Section V experiment harness
//   - internal/subspace — a block eigensolver built on TSQR (§II-E)
package gridqr
