// Streaming: out-of-core TSQR with O(N²) memory.
//
// The flat-tree TSQR recurrence (the out-of-core QR of the paper's §II-C
// related work) digests an endless row stream block by block: here ten
// million samples of a noisy linear model flow through a
// core.Accumulator that never holds more than a few KB of state.
//
// Streaming least squares for free: accumulate the augmented matrix
// [A | b]. Its R factor ends as [R c; 0 ρ], so x = R⁻¹·c is the
// least-squares fit and |ρ| is exactly ‖A·x − b‖ — one pass, no second
// look at the data.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"gridqr/internal/blas"
	"gridqr/internal/core"
	"gridqr/internal/lapack"
	"gridqr/internal/matrix"
)

const (
	totalRows = 10_000_000
	chunk     = 8192
	features  = 6
	noise     = 0.05
)

func main() {
	truth := []float64{0.3, -1.2, 2.5, 0.8, -0.4, 1.1}
	fmt.Printf("streaming: %d rows × %d features through a TSQR accumulator\n",
		totalRows, features)
	fmt.Printf("           memory footprint: one %d×%d triangle + one %d-row buffer\n\n",
		features+1, features+1, chunk)

	acc := core.NewAccumulator(features + 1) // [A | b]
	rng := rand.New(rand.NewSource(7))
	block := matrix.New(chunk, features+1)
	start := time.Now()
	for done := 0; done < totalRows; done += chunk {
		rows := min(chunk, totalRows-done)
		for i := 0; i < rows; i++ {
			y := 0.0
			for f := 0; f < features; f++ {
				v := rng.NormFloat64()
				block.Set(i, f, v)
				y += truth[f] * v
			}
			block.Set(i, features, y+noise*rng.NormFloat64())
		}
		acc.Push(block.View(0, 0, rows, features+1))
	}
	elapsed := time.Since(start)

	raug := acc.R()
	r := raug.View(0, 0, features, features)
	x := make([]float64, features)
	for f := 0; f < features; f++ {
		x[f] = raug.At(f, features)
	}
	blas.Dtrsv(blas.NoTrans, r.Clone(), x)
	rho := math.Abs(raug.At(features, features))

	fmt.Printf("consumed %d rows in %v (%.1f M rows/s)\n\n",
		acc.Rows(), elapsed.Round(time.Millisecond),
		float64(acc.Rows())/elapsed.Seconds()/1e6)
	fmt.Printf("%10s %12s %12s %12s\n", "feature", "true", "fitted", "error")
	worst := 0.0
	for f := 0; f < features; f++ {
		e := math.Abs(x[f] - truth[f])
		if e > worst {
			worst = e
		}
		fmt.Printf("%10d %12.6f %12.6f %12.2e\n", f, truth[f], x[f], e)
	}
	fmt.Printf("\nstreamed residual |ρ| = %.3f (pure noise would give σ·√M = %.3f)\n",
		rho, noise*math.Sqrt(totalRows))
	fmt.Printf("design conditioning (1-norm estimate from streamed R): %.2f\n",
		lapack.CondEst1(r.Clone()))
	fmt.Printf("max coefficient error %.2e\n", worst)
}
