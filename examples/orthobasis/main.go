// Orthobasis: the paper's motivating application (Section II-E) — block
// iterative eigensolvers (BLOPEX, SLEPc, PRIMME) must repeatedly build an
// orthogonal basis for a block of vectors, and "currently these packages
// rely on unstable orthogonalization schemes to avoid too many
// communications; TSQR is a stable algorithm that enables the same total
// number of messages."
//
// This example builds a Krylov block K = [v, Av, A²v, …] — whose columns
// become nearly linearly dependent, the hard case for orthogonalization —
// and compares:
//
//   - classical Gram-Schmidt (the cheap-communication, unstable scheme),
//   - CholeskyQR (a single allreduce, but error grows with cond(K)²),
//   - distributed TSQR over an in-process two-cluster grid.
//
// TSQR keeps ‖I − QᵀQ‖ at machine precision where the others collapse,
// at the same asymptotic message count.
//
//	go run ./examples/orthobasis
package main

import (
	"fmt"
	"math"
	"sync"

	"gridqr/internal/blas"
	"gridqr/internal/core"
	"gridqr/internal/grid"
	"gridqr/internal/matrix"
	"gridqr/internal/mpi"
	"gridqr/internal/scalapack"
)

const (
	m     = 100_000 // vector length
	block = 24      // Krylov block width
)

func main() {
	fmt.Printf("orthobasis: orthogonalizing a %d×%d Krylov block\n\n", m, block)
	k := krylovBlock()

	// --- Classical Gram-Schmidt ---
	qcgs := k.Clone()
	cgs(qcgs)
	fmt.Printf("classical Gram-Schmidt: ‖I − QᵀQ‖_F = %.3g   (unstable)\n",
		matrix.OrthoError(qcgs))

	g := grid.SmallTestGrid(2, 4, 1)
	p := g.Procs()
	offsets := scalapack.BlockOffsets(m, p)

	// --- CholeskyQR: one allreduce, conditioning-squared error ---
	wc := mpi.NewWorld(g)
	var cmu sync.Mutex
	var qChol *matrix.Dense
	cholFailed := false
	wc.Run(func(ctx *mpi.Ctx) {
		comm := mpi.WorldComm(ctx)
		in := core.Input{M: m, N: block, Offsets: offsets,
			Local: scalapack.Distribute(k, offsets, ctx.Rank())}
		res := core.CholeskyQR(comm, in)
		if !res.OK {
			if ctx.Rank() == 0 {
				cmu.Lock()
				cholFailed = true
				cmu.Unlock()
			}
			return
		}
		qf := scalapack.Collect(comm, res.QLocal, offsets, block)
		if ctx.Rank() == 0 {
			cmu.Lock()
			qChol = qf
			cmu.Unlock()
		}
	})
	if cholFailed {
		fmt.Printf("CholeskyQR:             failed (Gram matrix numerically indefinite)\n")
	} else {
		fmt.Printf("CholeskyQR:             ‖I − QᵀQ‖_F = %.3g   (error ∝ cond²)\n",
			matrix.OrthoError(qChol))
	}

	// --- Modified Gram-Schmidt: stable-ish, N(N+1)/2 reductions ---
	wm := mpi.NewWorld(g)
	var mmu sync.Mutex
	var qMGS *matrix.Dense
	wm.Run(func(ctx *mpi.Ctx) {
		comm := mpi.WorldComm(ctx)
		in := core.Input{M: m, N: block, Offsets: offsets,
			Local: scalapack.Distribute(k, offsets, ctx.Rank())}
		res := core.MGS(comm, in)
		qf := scalapack.Collect(comm, res.QLocal, offsets, block)
		if ctx.Rank() == 0 {
			mmu.Lock()
			qMGS = qf
			mmu.Unlock()
		}
	})
	fmt.Printf("modified Gram-Schmidt:  ‖I − QᵀQ‖_F = %.3g   (error ∝ cond, %d reductions)\n",
		matrix.OrthoError(qMGS), block*(block+1)/2+block)

	// --- Distributed TSQR ---
	w := mpi.NewWorld(g)
	var mu sync.Mutex
	var q *matrix.Dense
	var r *matrix.Dense
	w.Run(func(ctx *mpi.Ctx) {
		comm := mpi.WorldComm(ctx)
		in := core.Input{M: m, N: block, Offsets: offsets,
			Local: scalapack.Distribute(k, offsets, ctx.Rank())}
		res := core.Factorize(comm, in, core.Config{Tree: core.TreeGrid, WantQ: true})
		qFull := scalapack.Collect(comm, res.QLocal, offsets, block)
		if ctx.Rank() == 0 {
			mu.Lock()
			q, r = qFull, res.R
			mu.Unlock()
		}
	})
	fmt.Printf("TSQR (grid tree):       ‖I − QᵀQ‖_F = %.3g   (Householder-stable)\n",
		matrix.OrthoError(q))
	fmt.Printf("TSQR residual:          ‖K − QR‖/‖K‖ = %.3g\n",
		matrix.ResidualQR(k, q, r))
	fmt.Printf("TSQR inter-cluster messages: %d (incl. gathering Q for verification; the\n"+
		"  reduction itself crosses clusters once per direction, independent of block width)\n",
		w.Counters().Inter().Msgs)

	// The R factor's diagonal decay exposes how close to dependent the
	// Krylov directions were — exactly why stability matters here.
	first, last := math.Abs(r.At(0, 0)), math.Abs(r.At(block-1, block-1))
	fmt.Printf("\nbasis conditioning: |r11| = %.3g, |r_kk| = %.3g (ratio %.1e)\n",
		first, last, first/last)
}

// krylovBlock builds [v, Av, …, A^{block−1}v] for the 1D Laplacian-like
// operator (Av)_i = 2v_i − v_{i−1} − v_{i+1}, normalizing each column to
// unit length (as an eigensolver's power iterates would be).
func krylovBlock() *matrix.Dense {
	k := matrix.New(m, block)
	v := matrix.Random(m, 1, 7).Col(0)
	normalize(v)
	copy(k.Col(0), v)
	for j := 1; j < block; j++ {
		prev, cur := k.Col(j-1), k.Col(j)
		for i := range cur {
			s := 2 * prev[i]
			if i > 0 {
				s -= prev[i-1]
			}
			if i < m-1 {
				s -= prev[i+1]
			}
			cur[i] = s
		}
		normalize(cur)
	}
	return k
}

func normalize(v []float64) {
	blas.Dscal(1/blas.Dnrm2(v), v)
}

// cgs orthonormalizes the columns of q in place with classical
// Gram-Schmidt: every column is projected against the *original* previous
// columns' projections all at once — one reduction per column, but
// numerically unstable for ill-conditioned input.
func cgs(q *matrix.Dense) {
	for j := 0; j < q.Cols; j++ {
		cj := q.Col(j)
		coeffs := make([]float64, j)
		for i := 0; i < j; i++ {
			coeffs[i] = blas.Ddot(q.Col(i), cj)
		}
		for i := 0; i < j; i++ {
			blas.Daxpy(-coeffs[i], q.Col(i), cj)
		}
		normalize(cj)
	}
}
