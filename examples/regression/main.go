// Regression: distributed least squares on a tall-and-skinny design
// matrix — the workhorse application of TSQR.
//
// One million noisy samples of a degree-5 polynomial are scattered across
// 8 processes on two simulated clusters; the fit is solved as
// min‖A·x − b‖ through the TSQR factorization (one grid-tuned reduction
// plus two allreduces). Recovered coefficients are compared to the ground
// truth.
//
//	go run ./examples/regression
package main

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"gridqr/internal/core"
	"gridqr/internal/grid"
	"gridqr/internal/matrix"
	"gridqr/internal/mpi"
	"gridqr/internal/scalapack"
)

const (
	samples = 1_000_000
	degree  = 5
	noise   = 0.01
)

func main() {
	truth := []float64{1.5, -2.0, 0.75, 3.0, -1.25, 0.5} // c₀ + c₁t + … + c₅t⁵
	g := grid.SmallTestGrid(2, 4, 1)
	p := g.Procs()
	fmt.Printf("regression: fitting a degree-%d polynomial to %d noisy samples\n", degree, samples)
	fmt.Printf("            over %d processes on 2 clusters (noise σ = %g)\n\n", p, noise)

	offsets := scalapack.BlockOffsets(samples, p)
	w := mpi.NewWorld(g)
	var mu sync.Mutex
	var x *matrix.Dense
	var resid []float64
	start := time.Now()
	w.Run(func(ctx *mpi.Ctx) {
		comm := mpi.WorldComm(ctx)
		// Each rank synthesizes its own rows — no central data movement,
		// as on a real grid where data is born distributed.
		lo, hi := offsets[ctx.Rank()], offsets[ctx.Rank()+1]
		rows := hi - lo
		a := matrix.New(rows, degree+1)
		b := matrix.New(rows, 1)
		rng := rand.New(rand.NewSource(int64(1000 + ctx.Rank())))
		for i := 0; i < rows; i++ {
			t := 2*float64(lo+i)/float64(samples-1) - 1 // t ∈ [−1, 1]
			pow := 1.0
			y := 0.0
			for d := 0; d <= degree; d++ {
				a.Set(i, d, pow)
				y += truth[d] * pow
				pow *= t
			}
			b.Set(i, 0, y+noise*rng.NormFloat64())
		}
		in := core.Input{M: samples, N: degree + 1, Offsets: offsets, Local: a}
		xs, rs := core.LeastSquares(comm, in, b, core.Config{Tree: core.TreeGrid})
		if ctx.Rank() == 0 {
			mu.Lock()
			x, resid = xs, rs
			mu.Unlock()
		}
	})
	fmt.Printf("solved in %v\n\n", time.Since(start).Round(time.Millisecond))

	fmt.Printf("%8s %12s %12s %12s\n", "power", "true", "fitted", "error")
	worst := 0.0
	for d := 0; d <= degree; d++ {
		err := math.Abs(x.At(d, 0) - truth[d])
		if err > worst {
			worst = err
		}
		fmt.Printf("%8d %12.6f %12.6f %12.2e\n", d, truth[d], x.At(d, 0), err)
	}
	fmt.Printf("\nresidual ‖Ax−b‖ = %.4f (≈ σ·√M = %.4f for pure noise)\n",
		resid[0], noise*math.Sqrt(samples))
	fmt.Printf("max coefficient error %.2e\n", worst)
	c := w.Counters()
	fmt.Printf("communication: %d messages, %d inter-cluster\n", c.Total().Msgs, c.Inter().Msgs)
}
