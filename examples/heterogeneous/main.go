// Heterogeneous: the load-balancing extension of the paper's Section III.
//
// The paper's meta-scheduler enforces groups of *equivalent computing
// power*, which forces it to book only half the cores of faster machines.
// The natural alternative the paper sketches — "adapt the number of rows
// attributed to each domain as a function of the processing power
// dedicated to a domain" — is implemented by core.BalanceRows.
//
// This example simulates a grid whose second site has 3× faster
// processors and factors the same tall matrix twice: with uniform row
// blocks and with speed-proportional blocks. The balanced run finishes
// substantially earlier in virtual time, and both produce the same R.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"sync"

	"gridqr/internal/core"
	"gridqr/internal/grid"
	"gridqr/internal/lapack"
	"gridqr/internal/matrix"
	"gridqr/internal/mpi"
	"gridqr/internal/scalapack"
)

func main() {
	const mBig, n = 1 << 22, 32

	g := grid.SmallTestGrid(2, 4, 2)
	g.Clusters[1].Gflops = 3 * g.Clusters[0].Gflops
	fmt.Printf("heterogeneous: 2 clusters × 8 procs; cluster B is 3× faster\n\n")

	// --- Virtual-time comparison at Grid'5000 scale (cost-only) ---
	simulate := func(offsets []int) float64 {
		w := mpi.NewWorld(g, mpi.CostOnly())
		w.Run(func(ctx *mpi.Ctx) {
			core.Factorize(mpi.WorldComm(ctx), core.Input{M: mBig, N: n, Offsets: offsets},
				core.Config{Tree: core.TreeGrid})
		})
		return w.MaxClock()
	}
	uniform := simulate(scalapack.BlockOffsets(mBig, g.Procs()))
	balanced := simulate(core.BalanceRows(g, mBig, n))
	fmt.Printf("simulated factorization of a %d×%d matrix:\n", mBig, n)
	fmt.Printf("  uniform row blocks:  %.3f s (slow site on the critical path)\n", uniform)
	fmt.Printf("  balanced row blocks: %.3f s (%.0f%% faster)\n\n",
		balanced, 100*(uniform-balanced)/uniform)

	// --- Real-arithmetic check: balancing changes nothing numerically ---
	const mSmall = 20_000
	a := matrix.Random(mSmall, n, 1)
	offsets := core.BalanceRows(g, mSmall, n)
	fmt.Printf("row blocks on the real run (%d rows):\n", mSmall)
	for c := 0; c < 2; c++ {
		lo := offsets[c*8]
		hi := offsets[(c+1)*8]
		fmt.Printf("  cluster %s: rows %6d..%6d (%d rows, %d per proc)\n",
			g.Clusters[c].Name, lo, hi, hi-lo, (hi-lo)/8)
	}
	w := mpi.NewWorld(g)
	var mu sync.Mutex
	var r *matrix.Dense
	w.Run(func(ctx *mpi.Ctx) {
		comm := mpi.WorldComm(ctx)
		in := core.Input{M: mSmall, N: n, Offsets: offsets,
			Local: scalapack.Distribute(a, offsets, ctx.Rank())}
		res := core.Factorize(comm, in, core.Config{Tree: core.TreeGrid})
		if ctx.Rank() == 0 {
			mu.Lock()
			r = res.R
			mu.Unlock()
		}
	})
	lapack.NormalizeRSigns(r, nil)
	ref := core.FactorizeLocal(a, 0)
	lapack.NormalizeRSigns(ref, nil)
	if matrix.Equal(r, ref, 1e-10) {
		fmt.Println("\nbalanced distributed R matches sequential QR ✓")
	} else {
		fmt.Println("\nERROR: balanced R differs from sequential QR")
	}
}
