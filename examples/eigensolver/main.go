// Eigensolver: the full §II-E application — a distributed block
// eigensolver whose orthogonalization step is TSQR.
//
// The example computes the four dominant eigenpairs of the 1-D Laplacian
// on a coarse grid (the top of a fine-grid Laplacian spectrum is too
// clustered for any power-family method — real packages use shift-invert
// there), distributed over 8 processes on two simulated clusters. Every
// subspace iteration performs one TSQR (a single
// grid-tuned reduction), one Rayleigh-Ritz allreduce, one residual
// allreduce and a two-row halo exchange — O(1) inter-cluster messages
// per iteration regardless of the block width, which is exactly why the
// paper proposes TSQR for "block eigensolvers (BLOPEX, SLEPc, PRIMME)".
// Computed eigenvalues are checked against the closed form
// λ_j = 2 − 2cos(jπ/(m+1)).
//
//	go run ./examples/eigensolver
package main

import (
	"fmt"
	"math"
	"sync"

	"gridqr/internal/core"
	"gridqr/internal/grid"
	"gridqr/internal/mpi"
	"gridqr/internal/scalapack"
	"gridqr/internal/subspace"
)

func main() {
	const (
		m = 100
		k = 4
	)
	g := grid.SmallTestGrid(2, 4, 1)
	p := g.Procs()
	fmt.Printf("eigensolver: dominant %d eigenpairs of the %d-point 1-D Laplacian\n", k, m)
	fmt.Printf("             on %d processes over 2 clusters, TSQR orthogonalization\n\n", p)

	offsets := scalapack.BlockOffsets(m, p)
	run := func(update subspace.Operator) (*subspace.Result, *mpi.World) {
		w := mpi.NewWorld(g)
		var mu sync.Mutex
		var res *subspace.Result
		w.Run(func(ctx *mpi.Ctx) {
			comm := mpi.WorldComm(ctx)
			r := subspace.Iterate(comm, subspace.Laplacian1D{Offsets: offsets}, offsets,
				subspace.Options{BlockSize: k, MaxIter: 12000, Tol: 1e-8, Seed: 1,
					Tree: core.TreeGrid, Update: update})
			if ctx.Rank() == 0 {
				mu.Lock()
				res = r
				mu.Unlock()
			}
		})
		return res, w
	}

	raw, _ := run(nil)
	fmt.Printf("raw subspace iteration:       converged=%v after %d iterations\n",
		raw.Converged, raw.Iters)
	res, w := run(subspace.Chebyshev{
		Inner: subspace.Laplacian1D{Offsets: offsets}, Degree: 8, A: 0, B: 3.8,
	})
	fmt.Printf("Chebyshev-filtered (deg. 8):  converged=%v after %d iterations\n\n",
		res.Converged, res.Iters)
	fmt.Printf("%4s %18s %18s %12s %12s\n", "j", "computed", "exact", "error", "residual")
	for j := 0; j < k; j++ {
		exact := 2 - 2*math.Cos(float64(m-j)*math.Pi/float64(m+1))
		fmt.Printf("%4d %18.12f %18.12f %12.2e %12.2e\n",
			j, res.Values[j], exact, math.Abs(res.Values[j]-exact), res.Residuals[j])
	}
	c := w.Counters()
	fmt.Printf("\ncommunication: %d messages total, %d inter-cluster (%.1f per iteration)\n",
		c.Total().Msgs, c.Inter().Msgs, float64(c.Inter().Msgs)/float64(res.Iters))
}
