// TSLU: communication-avoiding LU with tournament pivoting — the sibling
// algorithm the paper's conclusion names ("the work and conclusion we
// have reached here for TSQR/CAQR can be (trivially) extended to
// TSLU/CALU").
//
// The example factors a tall matrix whose leading entries are tiny —
// poison for unpivoted elimination — over a two-cluster grid. The
// tournament selects pivot rows with one inter-cluster exchange per
// cluster pair, keeps the multipliers bounded, and reconstructs
// A = L·U to machine precision.
//
//	go run ./examples/tslu
package main

import (
	"fmt"
	"math"
	"sync"

	"gridqr/internal/core"
	"gridqr/internal/grid"
	"gridqr/internal/matrix"
	"gridqr/internal/mpi"
	"gridqr/internal/scalapack"
)

func main() {
	const m, n = 100_000, 16

	g := grid.SmallTestGrid(2, 4, 1)
	p := g.Procs()
	fmt.Printf("tslu: LU of a %d×%d matrix over %d processes, 2 clusters\n\n", m, n, p)

	// A tall matrix with a pathological top block: unpivoted elimination
	// would divide by 1e-13 at the very first step.
	a := matrix.Random(m, n, 5)
	for j := 0; j < n; j++ {
		a.Set(j, j, 1e-13)
	}

	offsets := scalapack.BlockOffsets(m, p)
	w := mpi.NewWorld(g)
	var mu sync.Mutex
	var res *core.TSLUResult
	var lfull *matrix.Dense
	w.Run(func(ctx *mpi.Ctx) {
		comm := mpi.WorldComm(ctx)
		in := core.Input{M: m, N: n, Offsets: offsets,
			Local: scalapack.Distribute(a, offsets, ctx.Rank())}
		r := core.TSLUFactorize(comm, in, core.TSLUConfig{Tree: core.TreeGrid})
		lf := scalapack.Collect(comm, r.LLocal, offsets, n)
		if ctx.Rank() == 0 {
			mu.Lock()
			res, lfull = r, lf
			mu.Unlock()
		}
	})

	fmt.Printf("tournament pivot rows: %v\n", res.PivotRows)
	fmt.Printf("max |L| (growth):      %.3g  (bounded — pivoting worked)\n", res.MaxL)

	// Verify A = L·U.
	var worst float64
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k <= j; k++ {
				s += lfull.At(i, k) * res.U.At(k, j)
			}
			if d := math.Abs(s - a.At(i, j)); d > worst {
				worst = d
			}
		}
	}
	fmt.Printf("max |A − L·U|:         %.3g\n", worst)
	fmt.Printf("inter-cluster messages: %d (tournament crosses clusters once)\n",
		w.Counters().Inter().Msgs)
}
