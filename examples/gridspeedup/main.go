// Gridspeedup: the paper's headline experiment, in one run.
//
// The example simulates the Grid'5000 platform (4 sites × 32
// dual-processor nodes, the measured Fig. 3(a) network) in cost-only
// virtual time and factors very tall matrices on 1, 2 and 4 geographical
// sites with both algorithms. It prints the speedup each algorithm gets
// from adding sites — TSQR's scales almost linearly, ScaLAPACK's does
// not, which is the paper's central claim.
//
//	go run ./examples/gridspeedup
package main

import (
	"fmt"

	"gridqr/internal/bench"
	"gridqr/internal/core"
	"gridqr/internal/grid"
)

func main() {
	g := grid.Grid5000()
	fmt.Println("gridspeedup: simulated Grid'5000 (Fig. 3a network parameters)")
	fmt.Println(bench.Fig3aTable(g))

	const n = 64
	fmt.Printf("QR factorization, N = %d, R-factor only. Gflop/s by site count:\n\n", n)
	fmt.Printf("%12s | %28s | %28s\n", "", "QCG-TSQR (tuned tree)", "ScaLAPACK (PDGEQRF)")
	fmt.Printf("%12s | %8s %8s %8s | %8s %8s %8s\n",
		"M", "1 site", "2 sites", "4 sites", "1 site", "2 sites", "4 sites")
	for _, m := range []int{1 << 19, 1 << 22, 1 << 25} {
		fmt.Printf("%12d |", m)
		var ts [3]float64
		for i, sites := range []int{1, 2, 4} {
			r := bench.Execute(bench.Run{Grid: g, Sites: sites, M: m, N: n,
				Algo: bench.TSQR, DomainsPerCluster: 64, Tree: core.TreeGrid})
			ts[i] = r.Gflops
			fmt.Printf(" %8.1f", r.Gflops)
		}
		fmt.Printf(" |")
		var sl [3]float64
		for i, sites := range []int{1, 2, 4} {
			r := bench.Execute(bench.Run{Grid: g, Sites: sites, M: m, N: n, Algo: bench.ScaLAPACK})
			sl[i] = r.Gflops
			fmt.Printf(" %8.1f", r.Gflops)
		}
		fmt.Println()
		if m == 1<<25 {
			fmt.Printf("\nvery tall matrix (M = %d):\n", m)
			fmt.Printf("  TSQR      4-site speedup: %.2fx  (paper: almost linear, ≈4)\n", ts[2]/ts[0])
			fmt.Printf("  ScaLAPACK 4-site speedup: %.2fx  (paper: hardly surpasses 2)\n", sl[2]/sl[0])
		}
	}
}
