// CAQR: factoring a general (not tall-and-skinny) matrix with
// Communication-Avoiding QR — the extension the paper announces in its
// conclusion ("we plan to extend this work to the QR factorization of
// general matrices").
//
// TSQR factors each panel of NB columns through the grid-tuned reduction
// tree, and the trailing matrix is updated along the same tree, so every
// panel costs O(1) inter-cluster messages instead of ScaLAPACK's O(NB).
// The example factors a 4096×1024 matrix over two clusters, verifies R
// against sequential Householder QR, and reports the measured
// inter-cluster traffic next to the ScaLAPACK-style baseline's.
//
//	go run ./examples/caqr
package main

import (
	"fmt"
	"sync"
	"time"

	"gridqr/internal/core"
	"gridqr/internal/grid"
	"gridqr/internal/lapack"
	"gridqr/internal/matrix"
	"gridqr/internal/mpi"
	"gridqr/internal/scalapack"
)

func main() {
	const (
		m  = 4096
		n  = 1024
		nb = 64
	)
	g := grid.SmallTestGrid(2, 4, 1)
	p := g.Procs()
	fmt.Printf("caqr: QR of a general %d×%d matrix (NB=%d) on %d processes over 2 clusters\n",
		m, n, nb, p)

	a := matrix.Random(m, n, 3)
	offsets := scalapack.BlockOffsets(m, p)

	// --- CAQR ---
	w := mpi.NewWorld(g)
	var mu sync.Mutex
	var r *matrix.Dense
	start := time.Now()
	var q *matrix.Dense
	w.Run(func(ctx *mpi.Ctx) {
		comm := mpi.WorldComm(ctx)
		in := core.Input{M: m, N: n, Offsets: offsets,
			Local: scalapack.Distribute(a, offsets, ctx.Rank())}
		res := core.CAQRFactorize(comm, in, core.CAQRConfig{NB: nb, WantQ: true})
		qf := scalapack.Collect(comm, res.QLocal, offsets, n)
		if ctx.Rank() == 0 {
			mu.Lock()
			r, q = res.R, qf
			mu.Unlock()
		}
	})
	caqrTime := time.Since(start)

	// Q/R consistency first (on the factors exactly as produced)…
	orthoErr := matrix.OrthoError(q)
	residErr := matrix.ResidualQR(a, q, r)
	// …then sign-normalize copies to compare R against sequential QR.
	ref := core.FactorizeLocal(a, nb)
	lapack.NormalizeRSigns(ref, nil)
	lapack.NormalizeRSigns(r, nil)
	maxDiff := 0.0
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			d := r.At(i, j) - ref.At(i, j)
			if d < 0 {
				d = -d
			}
			if d > maxDiff {
				maxDiff = d
			}
		}
	}
	fmt.Printf("CAQR done in %v, max |R − R_seq| = %.3g\n", caqrTime, maxDiff)
	fmt.Printf("explicit Q: ‖I − QᵀQ‖_F = %.3g, ‖A − QR‖/‖A‖ = %.3g\n",
		orthoErr, residErr)
	fmt.Printf("CAQR traffic: %d messages, %d inter-cluster\n",
		w.Counters().Total().Msgs, w.Counters().Inter().Msgs)

	// --- ScaLAPACK-style baseline on the same problem ---
	w2 := mpi.NewWorld(g)
	start = time.Now()
	w2.Run(func(ctx *mpi.Ctx) {
		comm := mpi.WorldComm(ctx)
		in := scalapack.Input{M: m, N: n, Offsets: offsets,
			Local: scalapack.Distribute(a, offsets, ctx.Rank())}
		scalapack.PDGEQRF(comm, in, nb, 0)
	})
	fmt.Printf("\nScaLAPACK-style PDGEQRF done in %v\n", time.Since(start))
	fmt.Printf("baseline traffic: %d messages, %d inter-cluster\n",
		w2.Counters().Total().Msgs, w2.Counters().Inter().Msgs)
	ratio := float64(w2.Counters().Inter().Msgs) / float64(w.Counters().Inter().Msgs)
	fmt.Printf("\ninter-cluster message reduction: %.0fx\n", ratio)
}
