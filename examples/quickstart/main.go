// Quickstart: factor a tall-and-skinny matrix with QCG-TSQR.
//
// The example builds a two-cluster in-process "grid" (8 processes as
// goroutines), distributes a 200,000×32 random matrix by row blocks, runs
// the TSQR factorization with the grid-tuned reduction tree — including
// the explicit Q factor — and verifies ‖A − QR‖ and ‖I − QᵀQ‖.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"
	"time"

	"gridqr/internal/core"
	"gridqr/internal/grid"
	"gridqr/internal/matrix"
	"gridqr/internal/mpi"
	"gridqr/internal/scalapack"
)

func main() {
	const m, n = 200_000, 32

	// A two-cluster platform: 2 clusters × 4 single-processor nodes.
	g := grid.SmallTestGrid(2, 4, 1)
	p := g.Procs()
	fmt.Printf("quickstart: QR of a %d×%d matrix on %d processes over %d clusters\n",
		m, n, p, len(g.Clusters))

	// The global matrix, and its contiguous row-block distribution.
	a := matrix.Random(m, n, 42)
	offsets := scalapack.BlockOffsets(m, p)

	w := mpi.NewWorld(g)
	var mu sync.Mutex
	var r, q *matrix.Dense
	start := time.Now()
	w.Run(func(ctx *mpi.Ctx) {
		comm := mpi.WorldComm(ctx)
		in := core.Input{
			M: m, N: n, Offsets: offsets,
			Local: scalapack.Distribute(a, offsets, ctx.Rank()),
		}
		res := core.Factorize(comm, in, core.Config{
			Tree:  core.TreeGrid, // binary per cluster, then across clusters
			WantQ: true,
		})
		// Reassemble the distributed Q on rank 0 for verification.
		qFull := scalapack.Collect(comm, res.QLocal, offsets, n)
		if ctx.Rank() == 0 {
			mu.Lock()
			r, q = res.R, qFull
			mu.Unlock()
		}
	})
	fmt.Printf("factorized in %v\n", time.Since(start))

	fmt.Printf("R upper triangular: %v\n", matrix.IsUpperTriangular(r, 0))
	fmt.Printf("‖I − QᵀQ‖_F  = %.3g\n", matrix.OrthoError(q))
	fmt.Printf("‖A − QR‖/‖A‖ = %.3g\n", matrix.ResidualQR(a, q, r))
	c := w.Counters()
	fmt.Printf("communication: %d messages total, %d inter-cluster\n",
		c.Total().Msgs, c.Inter().Msgs)
}
