// Command gridbench regenerates every table and figure of the paper's
// evaluation on the simulated Grid'5000 platform.
//
// Usage:
//
//	gridbench [-fig all|3|4|5|6|7|8|table1|table2|messages|faults|...] [-quick] [-faults]
//
// The output is one text table per figure panel: the simulator's Gflop/s
// next to the Section IV model prediction for every point the paper
// plots. -quick trims the sweeps (fewer M values) for a fast smoke run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"gridqr/internal/bench"
	"gridqr/internal/core"
	"gridqr/internal/grid"
	"gridqr/internal/monitor"
	"gridqr/internal/mpi"
	"gridqr/internal/scalapack"
	"gridqr/internal/sched"
	"gridqr/internal/telemetry"
)

func main() {
	fig := flag.String("fig", "all", "which figure/table to regenerate: 3,4,5,6,7,8,table1,table2,messages,breakdown,ablation,overlap,trace,weak,straggler,faults,model,all")
	quick := flag.Bool("quick", false, "trim sweeps for a fast smoke run")
	faults := flag.Bool("faults", false, "run only the FT-TSQR resilience table (fault-injection sweep); same as -fig faults")
	platform := flag.String("platform", "", "JSON platform file (default: the paper's Grid'5000)")
	csvDir := flag.String("csv", "", "also write figure data as CSV files into this directory")
	traceOut := flag.String("trace", "", "run a traced 2-site TSQR benchmark and write a Chrome/Perfetto trace_event JSON file (load in ui.perfetto.dev)")
	metrics := flag.Bool("metrics", false, "run the traced benchmark and print its metrics registry, critical path and per-site communication matrix")
	jsonOut := flag.String("json", "", "run the standard benchmark set and write a machine-readable JSON report")
	baseline := flag.String("baseline", "", "re-run the standard benchmark set and fail if it drifts from this committed JSON report (the CI perf gate)")
	serve := flag.Bool("serve", false, "run the closed-loop serving benchmark: concurrent TSQR jobs space-shared over site partitions, throughput and latency vs offered load")
	load := flag.Bool("load", false, "run the open-loop serving benchmark: a trace-driven arrival process with the SLO-driven autoscaler in the loop, latency and shedding vs offered load")
	streamMode := flag.Bool("stream", false, "run the open-loop streaming-ingest benchmark: row-blocks folded incrementally into one long-lived stream, snapshot-barrier latency vs ingest rate")
	blocks := flag.Int("blocks", bench.StreamBlocksPerPoint, "with -stream: blocks ingested per rate point")
	snapEvery := flag.Int("snapshot-every", bench.StreamSnapshotEvery, "with -stream: fire a snapshot barrier after every this many blocks")
	arrival := flag.String("arrival", "poisson", "with -load: arrival process (poisson, bursty, diurnal)")
	ratesFlag := flag.String("rates", "", "with -load/-stream: comma-separated offered rates in jobs/s resp. blocks/s (default the standard ladder)")
	arrivals := flag.Int("arrivals", bench.LoadArrivals, "with -load: arrivals per load point")
	queueCap := flag.Int("queue-cap", 0, "with -load: admission queue bound; arrivals past it are shed typed (0 = default)")
	noAutoscale := flag.Bool("no-autoscale", false, "with -load: pin the plan to the ladder's lowest level instead of autoscaling")
	listen := flag.String("listen", "", "with -serve: expose the monitoring endpoint (/metrics, /healthz, /jobs, /trace, /debug/pprof) on this address, e.g. 127.0.0.1:9090")
	verbose := flag.Bool("v", false, "with -serve: structured per-job lifecycle logs (log/slog) on stderr")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "with -serve: how long SIGINT/SIGTERM shutdown waits for in-flight jobs before exiting nonzero")
	overlap := flag.Bool("overlap", false, "use the compute/communication-overlap variants in the traced benchmark (-trace/-metrics)")
	scale := flag.Bool("scale", false, "run the 1k-32k-rank event-engine scale sweep on the synthetic hierarchical platform and print the tree-shape comparison")
	ranks := flag.Int("ranks", 0, "with -scale/-json: cap the sweep at this rank count (0 = the full 1024,4096,16384,32768 sweep)")
	treeFlag := flag.String("tree", "", "with -scale: restrict the sweep to one reduction tree (grid, binary, flat, binary-shuffled, multi-level; empty = all)")
	scaleMaxRanks := flag.Int("scale-max-ranks", 4096, "with -baseline: gate committed scale runs only up to this rank count (0 = gate the full sweep, the nightly setting)")
	flag.Parse()
	if *faults {
		*fig = "faults"
	}

	set := map[string]bool{}
	flag.Visit(func(fl *flag.Flag) { set[fl.Name] = true })
	cli := serveFlags{
		serve: *serve, load: *load, stream: *streamMode,
		listen: *listen, drainTimeout: *drainTimeout,
		verbose: *verbose, arrival: *arrival, rates: *ratesFlag,
		arrivals: *arrivals, queueCap: *queueCap, noAutoscale: *noAutoscale,
		blocks: *blocks, snapEvery: *snapEvery,
	}
	if err := validateServeFlags(set, cli); err != nil {
		fmt.Fprintf(os.Stderr, "gridbench: %v\n", err)
		os.Exit(2)
	}

	g := grid.Grid5000()
	if *platform != "" {
		f, err := os.Open(*platform)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridbench: %v\n", err)
			os.Exit(2)
		}
		g, err = grid.FromJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridbench: %v\n", err)
			os.Exit(2)
		}
	}
	if *quick {
		bench.PanelNs = []int{64, 512}
		bench.BestDomainCandidates = []int{1, 64}
		bench.DomainSweep = []int{1, 4, 16, 64}
	}

	if *platform != "" {
		adaptSweepsTo(g)
	}

	want := func(k string) bool { return *fig == "all" || *fig == k }
	ran := false

	if *traceOut != "" || *metrics {
		ran = true
		if *fig == "all" {
			*fig = "" // telemetry flags alone skip the figure sweeps
		}
		telemetryRun(g, *traceOut, *metrics, *overlap)
	}
	if *serve {
		ran = true
		if *fig == "all" {
			*fig = ""
		}
		loads := bench.StandardServeLoads
		if *quick {
			loads = loads[:min(2, len(loads))]
		}
		if !runServe(g, loads, *verbose, *listen, *drainTimeout) {
			os.Exit(1)
		}
	}
	if *load {
		ran = true
		if *fig == "all" {
			*fig = ""
		}
		rates, err := parseRates(*ratesFlag, bench.StandardLoadRates)
		if err != nil { // unreachable: validateServeFlags already parsed it
			fmt.Fprintf(os.Stderr, "gridbench: %v\n", err)
			os.Exit(2)
		}
		n := *arrivals
		if *quick {
			n = min(n, 40)
		}
		if !runLoad(g, *arrival, rates, n, *queueCap, *noAutoscale,
			*verbose, *listen, *drainTimeout) {
			os.Exit(1)
		}
	}
	if *streamMode {
		ran = true
		if *fig == "all" {
			*fig = ""
		}
		rates, err := parseRates(*ratesFlag, bench.StandardStreamRates)
		if err != nil { // unreachable: validateServeFlags already parsed it
			fmt.Fprintf(os.Stderr, "gridbench: %v\n", err)
			os.Exit(2)
		}
		b := *blocks
		if *quick {
			b = min(b, 2**snapEvery)
		}
		if !runStream(g, rates, b, *snapEvery, *verbose, *listen, *drainTimeout) {
			os.Exit(1)
		}
	}
	if *scale {
		ran = true
		if *fig == "all" {
			*fig = ""
		}
		trees := []core.Tree(nil)
		if *treeFlag != "" {
			t, err := core.ParseTree(*treeFlag)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gridbench: %v\n", err)
				os.Exit(2)
			}
			trees = []core.Tree{t}
		}
		fmt.Println(bench.FormatScale(bench.ScaleStudy(*ranks, trees)))
	}
	if *baseline != "" {
		ran = true
		if *fig == "all" {
			*fig = ""
		}
		if !perfGate(g, *baseline, platformName(*platform), *scaleMaxRanks) {
			os.Exit(1)
		}
	}
	if *jsonOut != "" {
		ran = true
		if *fig == "all" {
			*fig = ""
		}
		rep := bench.BuildReport(platformName(*platform), bench.StandardReportRuns(g))
		rep.Serving = bench.BuildServingRuns(g)
		to := bench.TraceOverheadStudy(g)
		rep.TraceOverhead = &to
		rep.Scale = bench.ScaleStudy(*ranks, nil)
		rep.Load = bench.BuildLoadRuns(g)
		rep.Stream = bench.BuildStreamRuns(g)
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridbench: %v\n", err)
			os.Exit(1)
		}
		if err := rep.WriteJSON(f); err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d runs)\n", *jsonOut, len(rep.Runs))
	}

	if want("3") {
		ran = true
		fmt.Println("== Figure 3(a): Grid'5000 communication characteristics (simulated platform) ==")
		fmt.Println(bench.Fig3aTable(g))
	}
	if want("table1") {
		ran = true
		fmt.Print(bench.FormatTable("Table I: R-factor only (M=2^22, N=64, P=256 domains)",
			bench.TableI(g, 1<<22, 64)))
		fmt.Println()
	}
	if want("table2") {
		ran = true
		fmt.Print(bench.FormatTable("Table II: Q and R factors (M=2^22, N=64, P=256 domains)",
			bench.TableII(g, 1<<22, 64)))
		fmt.Println()
	}
	if want("trace") {
		ran = true
		printTraces()
	}
	if want("weak") {
		ran = true
		fmt.Println(bench.FormatWeakScaling(g, 1<<17, 64))
	}
	if want("model") {
		ran = true
		fmt.Println(bench.FormatModelCheck(bench.CheckModel(g)))
		fmt.Println("== Multi-site crossover (bisection over the simulator, N = 64) ==")
		if m, ok := bench.CrossoverM(g, bench.ScaLAPACK, 64, 1<<17, 1<<26); ok {
			fmt.Printf("ScaLAPACK: all sites beat one site from M ≈ %d (paper: ≈ 5·10⁶–10⁷)\n", m)
		}
		if m, ok := bench.CrossoverM(g, bench.TSQR, 64, 1<<14, 1<<22); ok {
			fmt.Printf("TSQR:      all sites beat one site from M ≈ %d (paper: ≈ 5·10⁵)\n\n", m)
		}
	}
	if want("faults") {
		ran = true
		m, n := 4096, 32
		fmt.Println(bench.FormatResilience(g, m, n, bench.ResilienceStudy(g, m, n, 13)))
	}
	if want("straggler") {
		ran = true
		m, n := 1<<22, 64
		fmt.Println(bench.FormatStragglers(m, n,
			bench.StragglerStudy(g, m, n, []float64{1.5, 2, 4, 8})))
	}
	if want("ablation") {
		ran = true
		m, n, d := 1<<21, 64, 16
		fmt.Println(bench.FormatAblation(m, n, d, bench.TreeAblation(g, m, n, d)))
	}
	if want("overlap") {
		ran = true
		mt, nt, mq, nq, nb := 1<<20, 64, 1<<18, 256, 32
		fmt.Println(bench.FormatOverlap(mt, nt, mq, nq, nb,
			bench.OverlapStudy(g, mt, nt, mq, nq, nb)))
	}
	if want("breakdown") {
		ran = true
		ms := []int{1 << 17, 1 << 20, 1 << 23, 1 << 25}
		fmt.Println(bench.FormatBreakdown(64, bench.TimeBreakdownSweep(g, 64, ms)))
	}
	if want("messages") {
		ran = true
		c := bench.CompareMessages(3, 2, 600, 3)
		fmt.Println("== Fig. 1 vs Fig. 2: inter-cluster messages, M×3 matrix on 3 clusters ==")
		fmt.Printf("ScaLAPACK PDGEQR2 (binary tree):   %4d inter-cluster msgs (%d total)\n",
			c.ScaLAPACKInter, c.ScaLAPACKTotal)
		fmt.Printf("TSQR, shuffled binomial tree:      %4d inter-cluster msgs\n", c.TSQRShuffledInter)
		fmt.Printf("TSQR, grid-tuned tree (this work): %4d inter-cluster msgs (%d total)\n",
			c.TSQRGridInter, c.TSQRGrid)
		fmt.Printf("provable minimum (C-1):            %4d\n\n", c.OptimalInter)
	}

	var fig4, fig5 *bench.Figure
	if want("4") || want("8") {
		f := bench.Figure4(g)
		fig4 = &f
	}
	if want("5") || want("8") {
		f := bench.Figure5(g)
		fig5 = &f
	}
	emit := func(name string, f bench.Figure) {
		fmt.Println(f)
		if *csvDir != "" {
			path := filepath.Join(*csvDir, name+".csv")
			if err := os.WriteFile(path, []byte(f.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "gridbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	if want("4") {
		ran = true
		emit("figure4", *fig4)
	}
	if want("5") {
		ran = true
		emit("figure5", *fig5)
	}
	if want("6") {
		ran = true
		emit("figure6", bench.Figure6(g))
	}
	if want("7") {
		ran = true
		emit("figure7", bench.Figure7(g))
	}
	if want("8") {
		ran = true
		emit("figure8", bench.Figure8(g, fig4, fig5))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "gridbench: unknown figure %q\n", *fig)
		flag.Usage()
		os.Exit(2)
	}
}

// runServe drives the closed-loop serving sweep under a signal-aware
// context: SIGINT/SIGTERM stops new submissions, drains the in-flight
// jobs (bounded by drainTimeout), flushes a final SLO and metrics
// snapshot, and returns false — a nonzero exit — only when the drain
// times out or a job genuinely fails.
func runServe(g *grid.Grid, loads []int, verbose bool, listen string,
	drainTimeout time.Duration) bool {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := bench.ServeOptions{
		TraceRing:    &telemetry.RingConfig{Capacity: 256, Head: 32},
		DrainTimeout: drainTimeout,
	}
	if verbose {
		opts.Logger = slog.New(slog.NewTextHandler(os.Stderr,
			&slog.HandlerOptions{Level: slog.LevelDebug}))
	}

	// The monitoring endpoint follows the live load point: each fresh
	// server re-points /metrics, /jobs and /trace through the Swappable
	// while the listener — and so the scrape address — stays up.
	var last struct {
		sync.Mutex
		srv *sched.Server
		reg *telemetry.Registry
	}
	swap := monitor.NewSwappable()
	opts.OnPoint = func(srv *sched.Server, reg *telemetry.Registry) {
		last.Lock()
		last.srv, last.reg = srv, reg
		last.Unlock()
		swap.Set(monitor.Config{
			Registry: reg,
			Jobs:     func() any { return srv.Jobs() },
			Trace:    srv.TraceTail,
		})
	}
	if listen != "" {
		mon, err := monitor.StartHandler(listen, swap)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridbench: %v\n", err)
			return false
		}
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_ = mon.Shutdown(sctx)
			cancel()
		}()
		fmt.Printf("monitoring on http://%s/metrics (also /healthz /jobs /trace /debug/pprof)\n\n",
			mon.Addr())
	}

	rows, err := bench.ServeStudy(ctx, g, loads, bench.ServeJobsPerClient, opts)
	if len(rows) > 0 {
		fmt.Println(bench.FormatServe(g, rows))
	}

	// Final flush: the last load point's SLO snapshot, and under -v the
	// full metrics registry with bucket boundaries and quantiles.
	last.Lock()
	srv, reg := last.srv, last.reg
	last.Unlock()
	if srv != nil {
		slo := srv.SLO()
		fmt.Printf("final SLO (last load point): submitted=%d completed=%d failed=%d rejected=%d retries=%d deadline_misses=%d\n",
			slo.Submitted, slo.Completed, slo.Failed, slo.Rejected, slo.Retries, slo.DeadlineMisses)
		fmt.Printf("latency p50=%.4gs p99=%.4gs p999=%.4gs; queue wait p50=%.4gs p99=%.4gs\n\n",
			slo.Latency.P50, slo.Latency.P99, slo.Latency.P999,
			slo.QueueWait.P50, slo.QueueWait.P99)
	}
	if verbose && reg != nil {
		fmt.Println("== Final metrics registry ==")
		fmt.Print(reg.Dump())
		fmt.Println()
	}

	if err == nil && ctx.Err() == nil {
		fmt.Println(bench.FormatTraceOverhead(bench.TraceOverheadStudy(g)))
	}

	switch {
	case err == nil:
		return true
	case errors.Is(err, bench.ErrDrainTimeout):
		fmt.Fprintf(os.Stderr, "gridbench: %v\n", err)
		return false
	case errors.Is(err, context.Canceled):
		fmt.Printf("shutdown: drained in-flight jobs cleanly after signal (%d load point(s) finished)\n",
			len(rows))
		return true
	default:
		fmt.Fprintf(os.Stderr, "gridbench: %v\n", err)
		return false
	}
}

// serveFlags carries the serving-mode CLI surface for validation: which
// modes were requested plus every flag scoped to them.
type serveFlags struct {
	serve, load, stream bool
	listen              string
	drainTimeout        time.Duration
	verbose             bool
	arrival             string
	rates               string
	arrivals            int
	queueCap            int
	noAutoscale         bool
	blocks              int
	snapEvery           int
}

// validateServeFlags rejects contradictory serving-flag combinations up
// front instead of silently proceeding (a -drain-timeout on a figures
// run, a -rates list with a nonpositive entry, ...). set records which
// flags the user passed explicitly (flag.Visit), so defaults never
// trigger scope errors.
func validateServeFlags(set map[string]bool, f serveFlags) error {
	serving := f.serve || f.load || f.stream
	scoped := []struct {
		name  string
		scope string
		ok    bool
	}{
		{"listen", "-serve, -load or -stream", serving},
		{"drain-timeout", "-serve, -load or -stream", serving},
		{"v", "-serve, -load or -stream", serving},
		{"arrival", "-load", f.load},
		{"rates", "-load or -stream", f.load || f.stream},
		{"arrivals", "-load", f.load},
		{"queue-cap", "-load", f.load},
		{"no-autoscale", "-load", f.load},
		{"blocks", "-stream", f.stream},
		{"snapshot-every", "-stream", f.stream},
	}
	for _, s := range scoped {
		if set[s.name] && !s.ok {
			return fmt.Errorf("-%s requires %s", s.name, s.scope)
		}
	}
	if set["drain-timeout"] && f.drainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout must be positive, got %v", f.drainTimeout)
	}
	if f.load {
		switch f.arrival {
		case "poisson", "bursty", "diurnal":
		default:
			return fmt.Errorf("-arrival must be poisson, bursty or diurnal, got %q", f.arrival)
		}
		if _, err := parseRates(f.rates, bench.StandardLoadRates); err != nil {
			return err
		}
		if f.arrivals <= 0 {
			return fmt.Errorf("-arrivals must be positive, got %d", f.arrivals)
		}
		if set["queue-cap"] && f.queueCap <= 0 {
			return fmt.Errorf("-queue-cap must be positive, got %d", f.queueCap)
		}
	}
	if f.stream {
		if _, err := parseRates(f.rates, bench.StandardStreamRates); err != nil {
			return err
		}
		if f.blocks <= 0 {
			return fmt.Errorf("-blocks must be positive, got %d", f.blocks)
		}
		if f.snapEvery <= 0 {
			return fmt.Errorf("-snapshot-every must be positive, got %d", f.snapEvery)
		}
	}
	return nil
}

// parseRates parses the -rates list; empty selects the mode's standard
// ladder.
func parseRates(s string, def []float64) ([]float64, error) {
	if s == "" {
		return def, nil
	}
	var rates []float64
	for _, part := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("-rates: bad rate %q", part)
		}
		if r <= 0 {
			return nil, fmt.Errorf("-rates: rate must be positive, got %g", r)
		}
		rates = append(rates, r)
	}
	return rates, nil
}

// runLoad drives the open-loop sweep under the same signal-aware
// context and monitoring endpoint as runServe. It returns false — a
// nonzero exit — when the study errors, the drain times out, or any
// admitted job was lost.
func runLoad(g *grid.Grid, arrival string, rates []float64, arrivals, queueCap int,
	noAutoscale, verbose bool, listen string, drainTimeout time.Duration) bool {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := bench.LoadOptions{
		QueueCap:     queueCap,
		NoAutoscale:  noAutoscale,
		DrainTimeout: drainTimeout,
	}
	if verbose {
		opts.Logger = slog.New(slog.NewTextHandler(os.Stderr,
			&slog.HandlerOptions{Level: slog.LevelDebug}))
	}

	var last struct {
		sync.Mutex
		srv *sched.Server
		reg *telemetry.Registry
	}
	swap := monitor.NewSwappable()
	opts.OnPoint = func(srv *sched.Server, reg *telemetry.Registry) {
		last.Lock()
		last.srv, last.reg = srv, reg
		last.Unlock()
		swap.Set(monitor.Config{
			Registry: reg,
			Jobs:     func() any { return srv.Jobs() },
			Trace:    srv.TraceTail,
		})
	}
	if listen != "" {
		mon, err := monitor.StartHandler(listen, swap)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridbench: %v\n", err)
			return false
		}
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_ = mon.Shutdown(sctx)
			cancel()
		}()
		fmt.Printf("monitoring on http://%s/metrics (also /healthz /jobs /trace /debug/pprof)\n\n",
			mon.Addr())
	}

	rows, err := bench.LoadStudy(ctx, g, arrival, rates, arrivals, opts)
	if len(rows) > 0 {
		fmt.Println(bench.FormatLoad(g, rows))
	}

	last.Lock()
	srv := last.srv
	last.Unlock()
	if srv != nil {
		slo := srv.SLO()
		fmt.Printf("final SLO (last load point): submitted=%d completed=%d failed=%d rejected=%d preempted=%d steals=%d epoch=%d partitions=%d\n",
			slo.Submitted, slo.Completed, slo.Failed, slo.Rejected,
			slo.Preempted, slo.Steals, slo.Epoch, slo.Partitions)
		fmt.Printf("latency p50=%.4gs p99=%.4gs p999=%.4gs; queue wait p50=%.4gs p99=%.4gs\n\n",
			slo.Latency.P50, slo.Latency.P99, slo.Latency.P999,
			slo.QueueWait.P50, slo.QueueWait.P99)
	}

	var lost int64
	for _, r := range rows {
		lost += r.Lost
	}
	switch {
	case lost > 0:
		fmt.Fprintf(os.Stderr, "gridbench: %d admitted job(s) lost\n", lost)
		return false
	case err == nil:
		return true
	case errors.Is(err, context.Canceled):
		fmt.Printf("shutdown: drained admitted jobs cleanly after signal (%d load point(s) finished)\n",
			len(rows))
		return true
	default:
		fmt.Fprintf(os.Stderr, "gridbench: %v\n", err)
		return false
	}
}

// runStream drives the open-loop streaming-ingest sweep under the same
// signal-aware context and monitoring endpoint as runLoad. It returns
// false — a nonzero exit — when the study errors, the drain times out,
// or any accepted block was lost.
func runStream(g *grid.Grid, rates []float64, blocks, snapEvery int,
	verbose bool, listen string, drainTimeout time.Duration) bool {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := bench.StreamOptions{
		SnapshotEvery: snapEvery,
		DrainTimeout:  drainTimeout,
	}
	if verbose {
		opts.Logger = slog.New(slog.NewTextHandler(os.Stderr,
			&slog.HandlerOptions{Level: slog.LevelDebug}))
	}

	var last struct {
		sync.Mutex
		srv *sched.Server
	}
	swap := monitor.NewSwappable()
	opts.OnPoint = func(srv *sched.Server, reg *telemetry.Registry) {
		last.Lock()
		last.srv = srv
		last.Unlock()
		swap.Set(monitor.Config{
			Registry: reg,
			Jobs:     func() any { return srv.Jobs() },
			Trace:    srv.TraceTail,
		})
	}
	if listen != "" {
		mon, err := monitor.StartHandler(listen, swap)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridbench: %v\n", err)
			return false
		}
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_ = mon.Shutdown(sctx)
			cancel()
		}()
		fmt.Printf("monitoring on http://%s/metrics (also /healthz /jobs /trace /debug/pprof)\n\n",
			mon.Addr())
	}

	rows, err := bench.StreamStudy(ctx, g, rates, blocks, opts)
	if len(rows) > 0 {
		fmt.Println(bench.FormatStream(g, rows))
	}

	last.Lock()
	srv := last.srv
	last.Unlock()
	if srv != nil {
		slo := srv.SLO()
		fmt.Printf("final SLO (last rate point): blocks=%d snapshots=%d shed=%d retries=%d preempted=%d\n",
			slo.StreamBlocks, slo.StreamSnapshots, slo.StreamShed, slo.Retries, slo.Preempted)
		fmt.Printf("fold p50=%.4gs p99=%.4gs; snapshot p50=%.4gs p99=%.4gs\n\n",
			slo.StreamFold.P50, slo.StreamFold.P99,
			slo.StreamSnapshot.P50, slo.StreamSnapshot.P99)
	}

	var lost int
	for _, r := range rows {
		lost += r.Lost
	}
	switch {
	case lost > 0:
		fmt.Fprintf(os.Stderr, "gridbench: %d accepted block(s) lost\n", lost)
		return false
	case err == nil:
		return true
	case errors.Is(err, context.Canceled):
		fmt.Printf("shutdown: drained accepted blocks cleanly after signal (%d rate point(s) finished)\n",
			len(rows))
		return true
	default:
		fmt.Fprintf(os.Stderr, "gridbench: %v\n", err)
		return false
	}
}

// adaptSweepsTo clamps the paper's sweep parameters to what a custom
// platform can support: site counts within the cluster count, and domain
// counts that divide every cluster's processor count.
func adaptSweepsTo(g *grid.Grid) {
	var sites []int
	for _, s := range bench.SiteConfigs {
		if s <= len(g.Clusters) {
			sites = append(sites, s)
		}
	}
	if len(sites) == 0 {
		sites = []int{1}
	}
	bench.SiteConfigs = sites

	divides := func(d int) bool {
		for _, c := range g.Clusters {
			if c.Procs()%d != 0 {
				return false
			}
		}
		return true
	}
	filter := func(ds []int) []int {
		var out []int
		for _, d := range ds {
			if divides(d) {
				out = append(out, d)
			}
		}
		if len(out) == 0 {
			out = []int{1}
		}
		return out
	}
	bench.DomainSweep = filter(bench.DomainSweep)
	bench.BestDomainCandidates = filter(bench.BestDomainCandidates)
}

// platformName labels the report with its platform source.
func platformName(path string) string {
	if path == "" {
		return "grid5000"
	}
	return path
}

// perfGate re-runs the standard benchmark set and compares it against
// the committed baseline report; it prints every drift line and returns
// false if any metric moved beyond tolerance. Committed scale runs are
// re-run and gated only up to scaleMaxRanks (0 = all of them).
func perfGate(g *grid.Grid, baselinePath, platform string, scaleMaxRanks int) bool {
	f, err := os.Open(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridbench: %v\n", err)
		return false
	}
	want, err := bench.ReadReport(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridbench: %v\n", err)
		return false
	}
	got := bench.BuildReport(platform, bench.StandardReportRuns(g))
	if len(want.Serving) > 0 {
		got.Serving = bench.BuildServingRuns(g)
	}
	if want.TraceOverhead != nil {
		to := bench.TraceOverheadStudy(g)
		got.TraceOverhead = &to
	}
	if len(want.Scale) > 0 {
		got.Scale = bench.ScaleStudy(scaleMaxRanks, nil)
	}
	if len(want.Load) > 0 {
		got.Load = bench.BuildLoadRuns(g)
	}
	if len(want.Stream) > 0 {
		got.Stream = bench.BuildStreamRuns(g)
	}
	diffs := bench.CompareReports(got, want, bench.Tolerances{ScaleMaxRanks: scaleMaxRanks})
	if len(diffs) == 0 {
		fmt.Printf("perf gate: %d baseline runs match within tolerance\n", len(want.Runs))
		return true
	}
	fmt.Fprintf(os.Stderr, "perf gate: %d drift(s) from %s:\n", len(diffs), baselinePath)
	for _, d := range diffs {
		fmt.Fprintf(os.Stderr, "  %s\n", d)
	}
	fmt.Fprintln(os.Stderr, "if the change is intentional, regenerate the baseline with: gridbench -json "+baselinePath)
	return false
}

// telemetryRun executes the canonical traced benchmark — a 2-site TSQR
// factorization at the paper's N = 64, or its overlapped variant — and
// renders its telemetry: optionally a Chrome trace_event file for
// Perfetto, and optionally the metrics registry, critical-path
// decomposition and per-site communication matrix on stdout.
func telemetryRun(g *grid.Grid, traceOut string, metrics, overlap bool) {
	sites := min(2, len(g.Clusters))
	r := bench.Run{Grid: g, Sites: sites, M: 1 << 20, N: 64,
		Algo: bench.TSQR, Tree: core.TreeGrid, Overlap: overlap, Traced: true}
	m := bench.Execute(r)
	variant := ""
	if overlap {
		variant = " (overlapped)"
	}
	fmt.Printf("== Traced run: TSQR%s M=2^20 N=64 on %d site(s), %d procs ==\n",
		variant, sites, g.Sites(sites).Procs())
	fmt.Printf("simulated time %.6f s, %.1f Gflop/s (model %.1f)\n\n",
		m.Seconds, m.Gflops, m.ModelGflops)
	fmt.Print(m.CriticalPath.String())
	fmt.Printf("\n%s\n", m.CommMatrix.String())
	if metrics {
		fmt.Println("== Metrics registry ==")
		fmt.Print(m.Registry.Dump())
		fmt.Println()
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridbench: %v\n", err)
			os.Exit(1)
		}
		err = telemetry.WriteChromeTrace(f, m.Trace)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (open at ui.perfetto.dev)\n\n", traceOut)
	}
}

// printTraces renders Gantt charts of both algorithms on a small
// 4-cluster grid (16 ranks keep the chart readable): the visual form of
// the Section V-E argument — ScaLAPACK's rows are dominated by
// inter-cluster waits ('!'), TSQR's by computation ('#').
func printTraces() {
	tg := grid.SmallTestGrid(4, 4, 1)
	m, n := 1<<20, 64
	offsets := scalapack.BlockOffsets(m, tg.Procs())
	fmt.Println("== Execution traces (M=2^20, N=64, 4 clusters × 4 procs) ==")
	run := func(name string, fn func(ctx *mpi.Ctx)) {
		w := mpi.NewWorld(tg, mpi.CostOnly(), mpi.Traced())
		w.Run(fn)
		fmt.Printf("\n-- %s --\n%s", name, w.Gantt(100))
	}
	run("QCG-TSQR (grid-tuned tree)", func(ctx *mpi.Ctx) {
		core.Factorize(mpi.WorldComm(ctx), core.Input{M: m, N: n, Offsets: offsets},
			core.Config{Tree: core.TreeGrid})
	})
	run("ScaLAPACK PDGEQR2", func(ctx *mpi.Ctx) {
		scalapack.PDGEQR2(mpi.WorldComm(ctx), scalapack.Input{M: m, N: n, Offsets: offsets})
	})
	fmt.Println()
}
