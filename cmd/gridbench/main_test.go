package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildBench(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "gridbench")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func TestGridbenchFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	bin := buildBench(t)
	for _, tc := range []struct {
		fig  string
		want string
	}{
		{"3", "Orsay"},
		{"table1", "TSQR"},
		{"messages", "provable minimum"},
		{"ablation", "binary-shuffled"},
		{"faults", "kill-coordinator"},
	} {
		out, err := exec.Command(bin, "-fig", tc.fig).CombinedOutput()
		if err != nil {
			t.Fatalf("-fig %s: %v\n%s", tc.fig, err, out)
		}
		if !strings.Contains(string(out), tc.want) {
			t.Fatalf("-fig %s missing %q:\n%s", tc.fig, tc.want, out)
		}
	}
}

func TestGridbenchCSVAndPlatform(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	bin := buildBench(t)
	dir := t.TempDir()
	platform := filepath.Join(dir, "p.json")
	os.WriteFile(platform, []byte(`{
  "clusters": [
    {"name": "x", "nodes": 2, "procsPerNode": 2, "gflops": 3, "latencyMs": 0.05, "mbps": 900},
    {"name": "y", "nodes": 2, "procsPerNode": 2, "gflops": 3, "latencyMs": 0.05, "mbps": 900}
  ],
  "links": [{"from": "x", "to": "y", "latencyMs": 7, "mbps": 90}]
}`), 0o644)
	out, err := exec.Command(bin, "-fig", "7", "-quick", "-platform", platform, "-csv", dir).CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	data, err := os.ReadFile(filepath.Join(dir, "figure7.csv"))
	if err != nil {
		t.Fatal("CSV not written")
	}
	if !strings.HasPrefix(string(data), "panel,series,x,gflops,model_gflops") {
		t.Fatalf("bad CSV header:\n%s", data[:60])
	}
}

// TestGridbenchPerfGate exercises the CI gate end to end on a small
// platform: -json writes a baseline, -baseline passes against it, and a
// tampered baseline fails with a drift message.
func TestGridbenchPerfGate(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	bin := buildBench(t)
	dir := t.TempDir()
	platform := filepath.Join(dir, "p.json")
	os.WriteFile(platform, []byte(`{
  "clusters": [
    {"name": "x", "nodes": 2, "procsPerNode": 2, "gflops": 3, "latencyMs": 0.05, "mbps": 900},
    {"name": "y", "nodes": 2, "procsPerNode": 2, "gflops": 3, "latencyMs": 0.05, "mbps": 900}
  ],
  "links": [{"from": "x", "to": "y", "latencyMs": 7, "mbps": 90}]
}`), 0o644)
	baseline := filepath.Join(dir, "bench.json")
	if out, err := exec.Command(bin, "-platform", platform, "-json", baseline).CombinedOutput(); err != nil {
		t.Fatalf("-json: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "-platform", platform, "-baseline", baseline).CombinedOutput()
	if err != nil {
		t.Fatalf("gate failed against its own baseline: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "match within tolerance") {
		t.Fatalf("gate output:\n%s", out)
	}
	// Tamper with one message count: the gate must fail and say why.
	data, _ := os.ReadFile(baseline)
	tampered := strings.Replace(string(data), `"msgs": `, `"msgs": 1`, 1)
	if tampered == string(data) {
		t.Fatal("tamper failed to change the report")
	}
	os.WriteFile(baseline, []byte(tampered), 0o644)
	out, err = exec.Command(bin, "-platform", platform, "-baseline", baseline).CombinedOutput()
	if err == nil {
		t.Fatalf("gate passed a tampered baseline:\n%s", out)
	}
	if !strings.Contains(string(out), "msgs") || !strings.Contains(string(out), "regenerate") {
		t.Fatalf("drift output unhelpful:\n%s", out)
	}
}

// TestGridbenchOverlapFigure smoke-runs the overlap ablation table and
// the overlapped traced benchmark on a small platform.
func TestGridbenchOverlapFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	bin := buildBench(t)
	dir := t.TempDir()
	platform := filepath.Join(dir, "p.json")
	os.WriteFile(platform, []byte(`{
  "clusters": [
    {"name": "x", "nodes": 2, "procsPerNode": 2, "gflops": 3, "latencyMs": 0.05, "mbps": 900},
    {"name": "y", "nodes": 2, "procsPerNode": 2, "gflops": 3, "latencyMs": 0.05, "mbps": 900}
  ],
  "links": [{"from": "x", "to": "y", "latencyMs": 7, "mbps": 90}]
}`), 0o644)
	out, err := exec.Command(bin, "-platform", platform, "-fig", "overlap").CombinedOutput()
	if err != nil {
		t.Fatalf("-fig overlap: %v\n%s", err, out)
	}
	for _, want := range []string{"TSQR overlapped", "ScaLAPACK lookahead", "inter wait (s)"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("-fig overlap missing %q:\n%s", want, out)
		}
	}
	out, err = exec.Command(bin, "-platform", platform, "-metrics", "-overlap").CombinedOutput()
	if err != nil {
		t.Fatalf("-metrics -overlap: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "TSQR (overlapped)") {
		t.Fatalf("-overlap not reflected in traced run header:\n%s", out)
	}
}

// TestValidateServeFlags tables the serving-flag matrix: scope
// violations and nonsense values are rejected with a clear error,
// coherent combinations pass.
func TestValidateServeFlags(t *testing.T) {
	base := serveFlags{arrival: "poisson", arrivals: 160, drainTimeout: 30e9}
	cases := []struct {
		name    string
		set     []string
		mutate  func(*serveFlags)
		wantErr string
	}{
		{name: "defaults", set: nil, mutate: func(f *serveFlags) {}},
		{name: "serve alone", set: []string{"serve"},
			mutate: func(f *serveFlags) { f.serve = true }},
		{name: "load alone", set: []string{"load"},
			mutate: func(f *serveFlags) { f.load = true }},
		{name: "serve with listen and drain", set: []string{"serve", "listen", "drain-timeout"},
			mutate: func(f *serveFlags) { f.serve = true; f.listen = "127.0.0.1:0" }},
		{name: "load with everything", set: []string{"load", "arrival", "rates", "arrivals", "queue-cap", "no-autoscale", "v"},
			mutate: func(f *serveFlags) {
				f.load, f.verbose, f.noAutoscale = true, true, true
				f.arrival, f.rates, f.arrivals, f.queueCap = "diurnal", "100, 2500", 40, 8
			}},
		{name: "drain-timeout without a serving mode", set: []string{"drain-timeout"},
			mutate: func(f *serveFlags) {}, wantErr: "-drain-timeout requires"},
		{name: "listen without a serving mode", set: []string{"listen"},
			mutate: func(f *serveFlags) { f.listen = "127.0.0.1:0" }, wantErr: "-listen requires"},
		{name: "v without a serving mode", set: []string{"v"},
			mutate: func(f *serveFlags) { f.verbose = true }, wantErr: "-v requires"},
		{name: "rates without load", set: []string{"serve", "rates"},
			mutate:  func(f *serveFlags) { f.serve = true; f.rates = "100" },
			wantErr: "-rates requires -load"},
		{name: "arrival without load", set: []string{"arrival"},
			mutate: func(f *serveFlags) { f.arrival = "bursty" }, wantErr: "-arrival requires -load"},
		{name: "nonpositive drain-timeout", set: []string{"serve", "drain-timeout"},
			mutate:  func(f *serveFlags) { f.serve = true; f.drainTimeout = 0 },
			wantErr: "must be positive"},
		{name: "unknown arrival process", set: []string{"load"},
			mutate:  func(f *serveFlags) { f.load = true; f.arrival = "uniform" },
			wantErr: "poisson, bursty or diurnal"},
		{name: "nonpositive rate", set: []string{"load", "rates"},
			mutate:  func(f *serveFlags) { f.load = true; f.rates = "100,-5" },
			wantErr: "must be positive"},
		{name: "junk rate", set: []string{"load", "rates"},
			mutate:  func(f *serveFlags) { f.load = true; f.rates = "fast" },
			wantErr: "bad rate"},
		{name: "nonpositive arrivals", set: []string{"load", "arrivals"},
			mutate:  func(f *serveFlags) { f.load = true; f.arrivals = 0 },
			wantErr: "-arrivals must be positive"},
		{name: "nonpositive queue-cap", set: []string{"load", "queue-cap"},
			mutate:  func(f *serveFlags) { f.load = true; f.queueCap = -1 },
			wantErr: "-queue-cap must be positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			set := map[string]bool{}
			for _, s := range tc.set {
				set[s] = true
			}
			f := base
			tc.mutate(&f)
			err := validateServeFlags(set, f)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestGridbenchFlagValidationCLI pins the end-to-end behavior: a
// contradictory invocation exits nonzero with the validation message
// before any benchmark work starts.
func TestGridbenchFlagValidationCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	bin := buildBench(t)
	out, err := exec.Command(bin, "-drain-timeout", "5s").CombinedOutput()
	if err == nil {
		t.Fatalf("contradictory flags accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "-drain-timeout requires") {
		t.Fatalf("unhelpful validation error:\n%s", out)
	}
	out, err = exec.Command(bin, "-load", "-rates", "0").CombinedOutput()
	if err == nil {
		t.Fatalf("nonpositive rate accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "must be positive") {
		t.Fatalf("unhelpful rate error:\n%s", out)
	}
}

// TestGridbenchLoad smoke-runs the open-loop harness CLI on a small
// platform: the latency-vs-load table renders and no job is lost.
func TestGridbenchLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	bin := buildBench(t)
	dir := t.TempDir()
	platform := filepath.Join(dir, "p.json")
	os.WriteFile(platform, []byte(`{
  "clusters": [
    {"name": "x", "nodes": 2, "procsPerNode": 2, "gflops": 3, "latencyMs": 0.05, "mbps": 900},
    {"name": "y", "nodes": 2, "procsPerNode": 2, "gflops": 3, "latencyMs": 0.05, "mbps": 900}
  ],
  "links": [{"from": "x", "to": "y", "latencyMs": 7, "mbps": 90}]
}`), 0o644)
	out, err := exec.Command(bin, "-platform", platform, "-load",
		"-arrival", "diurnal", "-rates", "400", "-arrivals", "24").CombinedOutput()
	if err != nil {
		t.Fatalf("-load: %v\n%s", err, out)
	}
	for _, want := range []string{"Open-loop serving", "diurnal", "final SLO"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("-load output missing %q:\n%s", want, out)
		}
	}
}

func TestGridbenchUnknownFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	bin := buildBench(t)
	if out, err := exec.Command(bin, "-fig", "nope").CombinedOutput(); err == nil {
		t.Fatalf("expected failure:\n%s", out)
	}
}
