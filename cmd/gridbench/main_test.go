package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildBench(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "gridbench")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func TestGridbenchFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	bin := buildBench(t)
	for _, tc := range []struct {
		fig  string
		want string
	}{
		{"3", "Orsay"},
		{"table1", "TSQR"},
		{"messages", "provable minimum"},
		{"ablation", "binary-shuffled"},
		{"faults", "kill-coordinator"},
	} {
		out, err := exec.Command(bin, "-fig", tc.fig).CombinedOutput()
		if err != nil {
			t.Fatalf("-fig %s: %v\n%s", tc.fig, err, out)
		}
		if !strings.Contains(string(out), tc.want) {
			t.Fatalf("-fig %s missing %q:\n%s", tc.fig, tc.want, out)
		}
	}
}

func TestGridbenchCSVAndPlatform(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	bin := buildBench(t)
	dir := t.TempDir()
	platform := filepath.Join(dir, "p.json")
	os.WriteFile(platform, []byte(`{
  "clusters": [
    {"name": "x", "nodes": 2, "procsPerNode": 2, "gflops": 3, "latencyMs": 0.05, "mbps": 900},
    {"name": "y", "nodes": 2, "procsPerNode": 2, "gflops": 3, "latencyMs": 0.05, "mbps": 900}
  ],
  "links": [{"from": "x", "to": "y", "latencyMs": 7, "mbps": 90}]
}`), 0o644)
	out, err := exec.Command(bin, "-fig", "7", "-quick", "-platform", platform, "-csv", dir).CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	data, err := os.ReadFile(filepath.Join(dir, "figure7.csv"))
	if err != nil {
		t.Fatal("CSV not written")
	}
	if !strings.HasPrefix(string(data), "panel,series,x,gflops,model_gflops") {
		t.Fatalf("bad CSV header:\n%s", data[:60])
	}
}

// TestGridbenchPerfGate exercises the CI gate end to end on a small
// platform: -json writes a baseline, -baseline passes against it, and a
// tampered baseline fails with a drift message.
func TestGridbenchPerfGate(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	bin := buildBench(t)
	dir := t.TempDir()
	platform := filepath.Join(dir, "p.json")
	os.WriteFile(platform, []byte(`{
  "clusters": [
    {"name": "x", "nodes": 2, "procsPerNode": 2, "gflops": 3, "latencyMs": 0.05, "mbps": 900},
    {"name": "y", "nodes": 2, "procsPerNode": 2, "gflops": 3, "latencyMs": 0.05, "mbps": 900}
  ],
  "links": [{"from": "x", "to": "y", "latencyMs": 7, "mbps": 90}]
}`), 0o644)
	baseline := filepath.Join(dir, "bench.json")
	if out, err := exec.Command(bin, "-platform", platform, "-json", baseline).CombinedOutput(); err != nil {
		t.Fatalf("-json: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "-platform", platform, "-baseline", baseline).CombinedOutput()
	if err != nil {
		t.Fatalf("gate failed against its own baseline: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "match within tolerance") {
		t.Fatalf("gate output:\n%s", out)
	}
	// Tamper with one message count: the gate must fail and say why.
	data, _ := os.ReadFile(baseline)
	tampered := strings.Replace(string(data), `"msgs": `, `"msgs": 1`, 1)
	if tampered == string(data) {
		t.Fatal("tamper failed to change the report")
	}
	os.WriteFile(baseline, []byte(tampered), 0o644)
	out, err = exec.Command(bin, "-platform", platform, "-baseline", baseline).CombinedOutput()
	if err == nil {
		t.Fatalf("gate passed a tampered baseline:\n%s", out)
	}
	if !strings.Contains(string(out), "msgs") || !strings.Contains(string(out), "regenerate") {
		t.Fatalf("drift output unhelpful:\n%s", out)
	}
}

// TestGridbenchOverlapFigure smoke-runs the overlap ablation table and
// the overlapped traced benchmark on a small platform.
func TestGridbenchOverlapFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	bin := buildBench(t)
	dir := t.TempDir()
	platform := filepath.Join(dir, "p.json")
	os.WriteFile(platform, []byte(`{
  "clusters": [
    {"name": "x", "nodes": 2, "procsPerNode": 2, "gflops": 3, "latencyMs": 0.05, "mbps": 900},
    {"name": "y", "nodes": 2, "procsPerNode": 2, "gflops": 3, "latencyMs": 0.05, "mbps": 900}
  ],
  "links": [{"from": "x", "to": "y", "latencyMs": 7, "mbps": 90}]
}`), 0o644)
	out, err := exec.Command(bin, "-platform", platform, "-fig", "overlap").CombinedOutput()
	if err != nil {
		t.Fatalf("-fig overlap: %v\n%s", err, out)
	}
	for _, want := range []string{"TSQR overlapped", "ScaLAPACK lookahead", "inter wait (s)"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("-fig overlap missing %q:\n%s", want, out)
		}
	}
	out, err = exec.Command(bin, "-platform", platform, "-metrics", "-overlap").CombinedOutput()
	if err != nil {
		t.Fatalf("-metrics -overlap: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "TSQR (overlapped)") {
		t.Fatalf("-overlap not reflected in traced run header:\n%s", out)
	}
}

func TestGridbenchUnknownFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	bin := buildBench(t)
	if out, err := exec.Command(bin, "-fig", "nope").CombinedOutput(); err == nil {
		t.Fatalf("expected failure:\n%s", out)
	}
}
