// Command perfmodel prints the paper's Section IV performance model: the
// Table I/II communication and computation breakdowns for a chosen
// problem, the Equation 1 time predictions on the Grid'5000 platform, and
// the Properties 1–5 trends.
package main

import (
	"flag"
	"fmt"

	"gridqr/internal/grid"
	"gridqr/internal/perfmodel"
)

func main() {
	m := flag.Int("m", 1<<22, "global row count M")
	n := flag.Int("n", 64, "column count N")
	p := flag.Int("p", 256, "domain count P")
	flag.Parse()

	fmt.Printf("Performance model for M=%d, N=%d, P=%d\n\n", *m, *n, *p)

	fmt.Println("Table I — R-factor only (per domain, critical path):")
	printRow("ScaLAPACK QR2", perfmodel.ScaLAPACKR(*m, *n, *p))
	printRow("TSQR", perfmodel.TSQRR(*m, *n, *p))

	fmt.Println("\nTable II — Q and R factors:")
	printRow("ScaLAPACK QR2", perfmodel.ScaLAPACKQR(*m, *n, *p))
	printRow("TSQR", perfmodel.TSQRQR(*m, *n, *p))

	g := grid.Grid5000()
	fmt.Println("\nEquation 1 predictions on Grid'5000 (R only):")
	fmt.Printf("%8s %10s %14s %14s %12s %12s\n", "sites", "domains", "TSQR (s)", "ScaLAPACK (s)", "TSQR GF/s", "SL GF/s")
	for _, sites := range []int{1, 2, 4} {
		pred := perfmodel.Predictor{G: g, Sites: sites}
		ts := pred.TSQRTime(*m, *n, false)
		sl := pred.ScaLAPACKTime(*m, *n, false)
		fmt.Printf("%8d %10s %14.4f %14.4f %12.1f %12.1f\n",
			sites, "per-proc", ts, sl,
			perfmodel.Gflops(*m, *n, false, ts), perfmodel.Gflops(*m, *n, false, sl))
	}

	fmt.Println("\nProperties:")
	pred := perfmodel.Predictor{G: g, Sites: 4}
	fmt.Printf("  1. Q+R / R-only time ratio: %.2f (expect 2.0)\n",
		pred.TSQRTime(*m, *n, true)/pred.TSQRTime(*m, *n, false))
	fmt.Printf("  2. domanial kernel rate at N=%d: %.2f of %.2f Gflop/s peak\n",
		*n, g.KernelGflops(0, *n), g.Clusters[0].Gflops)
	fmt.Printf("  3. perf at 4M rows vs 0.5M rows: %.1f vs %.1f Gflop/s (grows with M)\n",
		perfmodel.Gflops(4<<20, *n, false, pred.TSQRTime(4<<20, *n, false)),
		perfmodel.Gflops(1<<19, *n, false, pred.TSQRTime(1<<19, *n, false)))
	fmt.Printf("  4. perf at N=256 vs N=64 (M=%d): %.1f vs %.1f Gflop/s (grows with N)\n", *m,
		perfmodel.Gflops(*m, 256, false, pred.TSQRTime(*m, 256, false)),
		perfmodel.Gflops(*m, 64, false, pred.TSQRTime(*m, 64, false)))
	fmt.Printf("  5. TSQR/ScaLAPACK advantage at N=64: %.2fx, at N=4096: %.2fx (shrinks)\n",
		pred.ScaLAPACKTime(*m, 64, false)/pred.TSQRTime(*m, 64, false),
		pred.ScaLAPACKTime(*m, 4096, false)/pred.TSQRTime(*m, 4096, false))
}

func printRow(name string, b perfmodel.Breakdown) {
	fmt.Printf("  %-15s #msg %12.0f   volume %14.4g bytes   flops %14.4g\n",
		name, b.Msgs, b.Volume, b.Flops)
}
