package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestPerfmodelOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "perfmodel")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "-m", "1048576", "-n", "64", "-p", "64").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"Table I", "Table II", "Equation 1", "Properties", "expect 2.0"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
