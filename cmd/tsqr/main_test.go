package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildOnce compiles the command under test into a temp dir.
func buildOnce(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "tsqr")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func runCLI(t *testing.T, bin string, args ...string) (string, error) {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	return string(out), err
}

func TestCLIAlgorithms(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	bin := buildOnce(t)
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-m", "4000", "-n", "8", "-q"}, "‖A - QR‖/‖A‖"},
		{[]string{"-algo", "caqr", "-m", "512", "-n", "64", "-nb", "16"}, "max |R - R_seq|"},
		{[]string{"-algo", "cholqr", "-m", "4000", "-n", "8"}, "‖I - QᵀQ‖_F"},
		{[]string{"-algo", "tslu", "-m", "4000", "-n", "8"}, "max |A - L·U|"},
		{[]string{"-algo", "lstsq", "-m", "4000", "-n", "8"}, "max |x - x_true|"},
		{[]string{"-m", "4000", "-n", "8", "-tree", "shuffled", "-baseline"}, "baseline done"},
	} {
		out, err := runCLI(t, bin, tc.args...)
		if err != nil {
			t.Fatalf("%v: %v\n%s", tc.args, err, out)
		}
		if !strings.Contains(out, tc.want) {
			t.Fatalf("%v: output missing %q:\n%s", tc.args, tc.want, out)
		}
	}
}

func TestCLIMatrixMarketRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	bin := buildOnce(t)
	dir := t.TempDir()
	rPath := filepath.Join(dir, "r.mtx")
	// Factor a random matrix, write R, then factor R itself from file.
	out, err := runCLI(t, bin, "-m", "2000", "-n", "6", "-out", rPath)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if _, err := os.Stat(rPath); err != nil {
		t.Fatal("output file missing")
	}
	out, err = runCLI(t, bin, "-in", rPath, "-clusters", "1", "-procs", "1")
	if err != nil {
		t.Fatalf("reading back: %v\n%s", err, out)
	}
	if !strings.Contains(out, "6×6 matrix") {
		t.Fatalf("unexpected readback output:\n%s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	bin := buildOnce(t)
	for _, args := range [][]string{
		{"-algo", "nope"},
		{"-tree", "nope"},
		{"-m", "10", "-n", "8"}, // too short for 8 procs
		{"-in", "/nonexistent/file.mtx"},
	} {
		if out, err := runCLI(t, bin, args...); err == nil {
			t.Fatalf("%v: expected failure, got:\n%s", args, out)
		}
	}
}
