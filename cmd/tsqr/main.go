// Command tsqr factors a matrix with the communication-avoiding
// algorithms of this library, running the distributed code for real (one
// goroutine per process) on an in-process cluster-of-clusters, and
// verifies the result numerically.
//
// Usage:
//
//	tsqr [-algo tsqr|caqr|cholqr|tslu] [-m rows] [-n cols] [-in file.mtx]
//	     [-clusters c] [-procs p] [-domains d]
//	     [-tree grid|binary|flat|shuffled] [-q] [-baseline] [-out r.mtx]
//
// Without -in, a random matrix of the requested size is generated.
// With -out, the resulting R (or U for tslu) is written in MatrixMarket
// format.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sync"
	"time"

	"gridqr/internal/core"
	"gridqr/internal/grid"
	"gridqr/internal/lapack"
	"gridqr/internal/matrix"
	"gridqr/internal/mmio"
	"gridqr/internal/mpi"
	"gridqr/internal/scalapack"
)

func main() {
	algo := flag.String("algo", "tsqr", "algorithm: tsqr, caqr, cholqr, tslu, lstsq")
	m := flag.Int("m", 100000, "rows (ignored with -in)")
	n := flag.Int("n", 32, "columns (ignored with -in)")
	inFile := flag.String("in", "", "MatrixMarket input file")
	outFile := flag.String("out", "", "write the triangular factor to this MatrixMarket file")
	clusters := flag.Int("clusters", 2, "simulated clusters")
	procsPerCluster := flag.Int("procs", 4, "processes per cluster")
	domains := flag.Int("domains", 0, "domains per cluster (0 = one per process; tsqr only)")
	treeName := flag.String("tree", "grid", "reduction tree: grid, binary, flat, shuffled")
	wantQ := flag.Bool("q", false, "also build the explicit Q factor (tsqr only)")
	baseline := flag.Bool("baseline", false, "also run the ScaLAPACK-style baseline for comparison")
	nb := flag.Int("nb", 64, "panel width (caqr)")
	seed := flag.Int64("seed", 1, "matrix seed")
	flag.Parse()

	tree, ok := map[string]core.Tree{
		"grid": core.TreeGrid, "binary": core.TreeBinary,
		"flat": core.TreeFlat, "shuffled": core.TreeBinaryShuffled,
	}[*treeName]
	if !ok {
		fatal("unknown tree %q", *treeName)
	}

	global := loadOrGenerate(*inFile, *m, *n, *seed)
	g := grid.SmallTestGrid(*clusters, *procsPerCluster, 1)
	p := g.Procs()
	if *algo != "caqr" && global.Rows < p*global.Cols {
		fatal("matrix too short: %d×%d needs at least %d rows for %d processes (N rows per domain); reduce -procs/-clusters",
			global.Rows, global.Cols, p*global.Cols, p)
	}
	fmt.Printf("%s: %d×%d matrix over %d processes (%d clusters, %s tree)\n",
		*algo, global.Rows, global.Cols, p, *clusters, tree)
	offsets := scalapack.BlockOffsets(global.Rows, p)

	var factor *matrix.Dense
	switch *algo {
	case "tsqr":
		factor = runTSQR(g, global, offsets, core.Config{
			DomainsPerCluster: *domains, Tree: tree, WantQ: *wantQ,
		})
	case "caqr":
		factor = runCAQR(g, global, offsets, *nb)
	case "cholqr":
		factor = runCholQR(g, global, offsets)
	case "tslu":
		factor = runTSLU(g, global, offsets, tree)
	case "lstsq":
		factor = runLstsq(g, global, offsets, tree, *seed)
	default:
		fatal("unknown algorithm %q", *algo)
	}

	if *baseline {
		runBaseline(g, global, offsets)
	}
	if *outFile != "" && factor != nil {
		f, err := os.Create(*outFile)
		if err != nil {
			fatal("%v", err)
		}
		if err := mmio.Write(f, factor); err != nil {
			fatal("%v", err)
		}
		f.Close()
		fmt.Printf("wrote %d×%d factor to %s\n", factor.Rows, factor.Cols, *outFile)
	}
}

func loadOrGenerate(path string, m, n int, seed int64) *matrix.Dense {
	if path == "" {
		return matrix.Random(m, n, seed)
	}
	f, err := os.Open(path)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	a, err := mmio.Read(f)
	if err != nil {
		fatal("%v", err)
	}
	return a
}

func runTSQR(g *grid.Grid, global *matrix.Dense, offsets []int, cfg core.Config) *matrix.Dense {
	w := mpi.NewWorld(g)
	var mu sync.Mutex
	var r, q *matrix.Dense
	start := time.Now()
	w.Run(func(ctx *mpi.Ctx) {
		comm := mpi.WorldComm(ctx)
		in := core.Input{M: global.Rows, N: global.Cols, Offsets: offsets,
			Local: scalapack.Distribute(global, offsets, ctx.Rank())}
		res := core.Factorize(comm, in, cfg)
		var qf *matrix.Dense
		if cfg.WantQ {
			qf = scalapack.Collect(comm, res.QLocal, offsets, global.Cols)
		}
		if ctx.Rank() == 0 {
			mu.Lock()
			r, q = res.R, qf
			mu.Unlock()
		}
	})
	report(w, "TSQR", start)
	ref := core.FactorizeLocal(global, 0)
	lapack.NormalizeRSigns(ref, nil)
	lapack.NormalizeRSigns(r, q)
	fmt.Printf("max |R - R_seq| = %.3g\n", maxTriuDiff(r, ref))
	if cfg.WantQ {
		fmt.Printf("‖I - QᵀQ‖_F   = %.3g\n", matrix.OrthoError(q))
		fmt.Printf("‖A - QR‖/‖A‖  = %.3g\n", matrix.ResidualQR(global, q, r))
	}
	return r
}

func runCAQR(g *grid.Grid, global *matrix.Dense, offsets []int, nb int) *matrix.Dense {
	w := mpi.NewWorld(g)
	var mu sync.Mutex
	var r *matrix.Dense
	start := time.Now()
	w.Run(func(ctx *mpi.Ctx) {
		comm := mpi.WorldComm(ctx)
		in := core.Input{M: global.Rows, N: global.Cols, Offsets: offsets,
			Local: scalapack.Distribute(global, offsets, ctx.Rank())}
		res := core.CAQRFactorize(comm, in, core.CAQRConfig{NB: nb})
		if ctx.Rank() == 0 {
			mu.Lock()
			r = res.R
			mu.Unlock()
		}
	})
	report(w, "CAQR", start)
	ref := core.FactorizeLocal(global, nb)
	lapack.NormalizeRSigns(ref, nil)
	lapack.NormalizeRSigns(r, nil)
	fmt.Printf("max |R - R_seq| = %.3g\n", maxTriuDiff(r, ref))
	return r
}

func runCholQR(g *grid.Grid, global *matrix.Dense, offsets []int) *matrix.Dense {
	w := mpi.NewWorld(g)
	var mu sync.Mutex
	var r, q *matrix.Dense
	failed := false
	start := time.Now()
	w.Run(func(ctx *mpi.Ctx) {
		comm := mpi.WorldComm(ctx)
		in := core.Input{M: global.Rows, N: global.Cols, Offsets: offsets,
			Local: scalapack.Distribute(global, offsets, ctx.Rank())}
		res := core.CholeskyQR(comm, in)
		if !res.OK {
			if ctx.Rank() == 0 {
				mu.Lock()
				failed = true
				mu.Unlock()
			}
			return
		}
		qf := scalapack.Collect(comm, res.QLocal, offsets, global.Cols)
		if ctx.Rank() == 0 {
			mu.Lock()
			r, q = res.R, qf
			mu.Unlock()
		}
	})
	report(w, "CholeskyQR", start)
	if failed {
		fmt.Println("CholeskyQR FAILED: Gram matrix numerically indefinite (matrix too ill-conditioned)")
		return nil
	}
	fmt.Printf("‖I - QᵀQ‖_F   = %.3g (grows with cond²; use tsqr for stability)\n", matrix.OrthoError(q))
	fmt.Printf("‖A - QR‖/‖A‖  = %.3g\n", matrix.ResidualQR(global, q, r))
	return r
}

func runTSLU(g *grid.Grid, global *matrix.Dense, offsets []int, tree core.Tree) *matrix.Dense {
	w := mpi.NewWorld(g)
	var mu sync.Mutex
	var res *core.TSLUResult
	var lfull *matrix.Dense
	start := time.Now()
	w.Run(func(ctx *mpi.Ctx) {
		comm := mpi.WorldComm(ctx)
		in := core.Input{M: global.Rows, N: global.Cols, Offsets: offsets,
			Local: scalapack.Distribute(global, offsets, ctx.Rank())}
		r := core.TSLUFactorize(comm, in, core.TSLUConfig{Tree: tree})
		lf := scalapack.Collect(comm, r.LLocal, offsets, global.Cols)
		if ctx.Rank() == 0 {
			mu.Lock()
			res, lfull = r, lf
			mu.Unlock()
		}
	})
	report(w, "TSLU", start)
	var worst float64
	for i := 0; i < global.Rows; i++ {
		for j := 0; j < global.Cols; j++ {
			var s float64
			for k := 0; k <= j; k++ {
				s += lfull.At(i, k) * res.U.At(k, j)
			}
			if d := math.Abs(s - global.At(i, j)); d > worst {
				worst = d
			}
		}
	}
	fmt.Printf("max |A - L·U| = %.3g, max |L| = %.3g\n", worst, res.MaxL)
	return res.U
}

// runLstsq solves min‖Ax−b‖ for a synthesized right-hand side with a
// known solution, and reports the recovery error.
func runLstsq(g *grid.Grid, global *matrix.Dense, offsets []int, tree core.Tree, seed int64) *matrix.Dense {
	m, n := global.Rows, global.Cols
	xTrue := matrix.Random(n, 1, seed+1)
	b := matrix.New(m, 1)
	for i := 0; i < m; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += global.At(i, j) * xTrue.At(j, 0)
		}
		b.Set(i, 0, s)
	}
	w := mpi.NewWorld(g)
	var mu sync.Mutex
	var x *matrix.Dense
	var resid []float64
	start := time.Now()
	w.Run(func(ctx *mpi.Ctx) {
		comm := mpi.WorldComm(ctx)
		in := core.Input{M: m, N: n, Offsets: offsets,
			Local: scalapack.Distribute(global, offsets, ctx.Rank())}
		bl := scalapack.Distribute(b, offsets, ctx.Rank())
		xs, rs := core.LeastSquares(comm, in, bl, core.Config{Tree: tree})
		if ctx.Rank() == 0 {
			mu.Lock()
			x, resid = xs, rs
			mu.Unlock()
		}
	})
	report(w, "least squares", start)
	worst := 0.0
	for j := 0; j < n; j++ {
		if d := math.Abs(x.At(j, 0) - xTrue.At(j, 0)); d > worst {
			worst = d
		}
	}
	fmt.Printf("max |x - x_true| = %.3g, residual = %.3g (consistent system)\n", worst, resid[0])
	return x
}

func runBaseline(g *grid.Grid, global *matrix.Dense, offsets []int) {
	w := mpi.NewWorld(g)
	start := time.Now()
	w.Run(func(ctx *mpi.Ctx) {
		comm := mpi.WorldComm(ctx)
		in := scalapack.Input{M: global.Rows, N: global.Cols, Offsets: offsets,
			Local: scalapack.Distribute(global, offsets, ctx.Rank())}
		scalapack.PDGEQR2(comm, in)
	})
	report(w, "ScaLAPACK-style baseline", start)
}

func report(w *mpi.World, name string, start time.Time) {
	c := w.Counters()
	fmt.Printf("%s done in %v (%d messages, %d inter-cluster)\n",
		name, time.Since(start).Round(time.Microsecond), c.Total().Msgs, c.Inter().Msgs)
}

func maxTriuDiff(a, b *matrix.Dense) float64 {
	var worst float64
	for j := 0; j < a.Cols; j++ {
		for i := 0; i <= j && i < a.Rows; i++ {
			if d := math.Abs(a.At(i, j) - b.At(i, j)); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tsqr: "+format+"\n", args...)
	os.Exit(2)
}
