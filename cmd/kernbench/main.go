// Command kernbench measures the wall-clock kernel benchmark set
// (internal/bench.RunKernBench) and optionally gates it against a
// committed baseline. Unlike gridbench, whose simulated numbers are
// machine-independent and diffed exactly, kernbench times real kernels
// on the host, so GOMAXPROCS is pinned for repeatability and the gate
// only fails on large regressions:
//
//	kernbench -procs 1 -json results/KERNBENCH.json      # refresh baseline
//	kernbench -procs 1 -baseline results/KERNBENCH.json  # CI gate (-tol 0.30)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"gridqr/internal/bench"
	"gridqr/internal/blas"
)

func main() {
	procs := flag.Int("procs", 1, "GOMAXPROCS (and BLAS worker count) to pin while measuring")
	jsonOut := flag.String("json", "", "write measurements to this file as a new baseline")
	baseline := flag.String("baseline", "", "compare measurements against this committed baseline")
	tol := flag.Float64("tol", 0.30, "relative slowdown tolerated before the gate fails")
	flag.Parse()

	runtime.GOMAXPROCS(*procs)
	blas.SetWorkers(*procs)

	results := bench.RunKernBench()
	fmt.Printf("%-24s %14s %10s\n", "kernel", "ns/op", "Gflop/s")
	for _, r := range results {
		fmt.Printf("%-24s %14.0f %10.2f\n", r.Name, r.NsPerOp, r.Gflops)
	}

	if *jsonOut != "" {
		rep := bench.KernReport{Procs: *procs, Results: results}
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("baseline written to %s (procs=%d)\n", *jsonOut, *procs)
	}

	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			fatal(err)
		}
		want, err := bench.ReadKernReport(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if want.Procs != *procs {
			fmt.Fprintf(os.Stderr, "warning: baseline taken at procs=%d, measuring at procs=%d\n",
				want.Procs, *procs)
		}
		diffs := bench.CompareKern(results, want, *tol)
		if len(diffs) > 0 {
			fmt.Fprintln(os.Stderr, "kernel benchmark gate FAILED:")
			for _, d := range diffs {
				fmt.Fprintln(os.Stderr, "  "+d)
			}
			fmt.Fprintf(os.Stderr, "if the slowdown is intentional, refresh with `make baseline-kern`\n")
			os.Exit(1)
		}
		fmt.Printf("kernel gate passed against %s (tol %.0f%%)\n", *baseline, *tol*100)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kernbench:", err)
	os.Exit(1)
}
