// Package gridqr's top-level benchmarks: one per table and figure of the
// paper's evaluation, plus wall-clock benchmarks of the real kernels.
//
// The Figure/Table benchmarks run the distributed algorithms in cost-only
// virtual time on the simulated Grid'5000 platform and report the paper's
// metric (Gflop/s) for representative points of each sweep via
// b.ReportMetric; `go run ./cmd/gridbench` regenerates the full sweeps.
// The kernel benchmarks (BenchmarkLocalQR, BenchmarkStackQR,
// BenchmarkParallelTSQR, ...) measure the actual numerical code on the
// host machine.
package gridqr

import (
	"fmt"
	"sync"
	"testing"

	"gridqr/internal/bench"
	"gridqr/internal/core"
	"gridqr/internal/grid"
	"gridqr/internal/lapack"
	"gridqr/internal/matrix"
	"gridqr/internal/mpi"
	"gridqr/internal/perfmodel"
	"gridqr/internal/scalapack"
	"gridqr/internal/subspace"
)

// reportRun executes one simulated experiment point per iteration and
// reports measured and model Gflop/s.
func reportRun(b *testing.B, r bench.Run) {
	b.Helper()
	var meas bench.Measurement
	for i := 0; i < b.N; i++ {
		meas = bench.Execute(r)
	}
	b.ReportMetric(meas.Gflops, "Gflop/s")
	b.ReportMetric(meas.ModelGflops, "model-Gflop/s")
	b.ReportMetric(float64(meas.Counters.Inter().Msgs), "inter-msgs")
}

// BenchmarkTableI reproduces Table I (R-factor only): both algorithms on
// the full 4-site grid, with message/volume/flop counters reported.
func BenchmarkTableI(b *testing.B) {
	g := grid.Grid5000()
	for _, algo := range []bench.Algorithm{bench.ScaLAPACK, bench.TSQR} {
		b.Run(algo.String(), func(b *testing.B) {
			var meas bench.Measurement
			for i := 0; i < b.N; i++ {
				meas = bench.Execute(bench.Run{Grid: g, Sites: 4, M: 1 << 22, N: 64,
					Algo: algo, Tree: core.TreeGrid})
			}
			t := meas.Counters.Total()
			b.ReportMetric(float64(t.Msgs), "msgs")
			b.ReportMetric(t.Bytes, "bytes")
			b.ReportMetric(meas.Counters.Flops/256, "flops/proc")
		})
	}
}

// BenchmarkTableII is Table I's Q-and-R variant (paper Table II).
func BenchmarkTableII(b *testing.B) {
	g := grid.Grid5000()
	for _, algo := range []bench.Algorithm{bench.ScaLAPACK, bench.TSQR} {
		b.Run(algo.String(), func(b *testing.B) {
			var meas bench.Measurement
			for i := 0; i < b.N; i++ {
				meas = bench.Execute(bench.Run{Grid: g, Sites: 4, M: 1 << 22, N: 64,
					Algo: algo, Tree: core.TreeGrid, WantQ: true})
			}
			t := meas.Counters.Total()
			b.ReportMetric(float64(t.Msgs), "msgs")
			b.ReportMetric(t.Bytes, "bytes")
			b.ReportMetric(meas.Counters.Flops/256, "flops/proc")
		})
	}
}

// BenchmarkFig1Fig2Messages reproduces the Fig. 1 / Fig. 2 inter-cluster
// message-count comparison on the 3-cluster example.
func BenchmarkFig1Fig2Messages(b *testing.B) {
	var c bench.MessageComparison
	for i := 0; i < b.N; i++ {
		c = bench.CompareMessages(3, 2, 600, 3)
	}
	b.ReportMetric(float64(c.ScaLAPACKInter), "scalapack-inter")
	b.ReportMetric(float64(c.TSQRGridInter), "tsqr-grid-inter")
	b.ReportMetric(float64(c.OptimalInter), "optimal")
}

// BenchmarkFig4 samples Figure 4 (ScaLAPACK performance): each (N, sites)
// panel at a representative tall M.
func BenchmarkFig4(b *testing.B) {
	g := grid.Grid5000()
	for _, n := range []int{64, 512} {
		for _, sites := range []int{1, 4} {
			m := bench.MSweep(n)[len(bench.MSweep(n))-1]
			b.Run(fmt.Sprintf("N%d/sites%d", n, sites), func(b *testing.B) {
				reportRun(b, bench.Run{Grid: g, Sites: sites, M: m, N: n, Algo: bench.ScaLAPACK})
			})
		}
	}
}

// BenchmarkFig5 samples Figure 5 (TSQR performance, tuned tree).
func BenchmarkFig5(b *testing.B) {
	g := grid.Grid5000()
	for _, n := range []int{64, 512} {
		for _, sites := range []int{1, 4} {
			m := bench.MSweep(n)[len(bench.MSweep(n))-1]
			b.Run(fmt.Sprintf("N%d/sites%d", n, sites), func(b *testing.B) {
				reportRun(b, bench.Run{Grid: g, Sites: sites, M: m, N: n,
					Algo: bench.TSQR, DomainsPerCluster: 64, Tree: core.TreeGrid})
			})
		}
	}
}

// BenchmarkFig6 samples Figure 6 (domains-per-cluster effect, 4 sites).
func BenchmarkFig6(b *testing.B) {
	g := grid.Grid5000()
	for _, d := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("domains%d", d), func(b *testing.B) {
			reportRun(b, bench.Run{Grid: g, Sites: 4, M: 1 << 22, N: 64,
				Algo: bench.TSQR, DomainsPerCluster: d, Tree: core.TreeGrid})
		})
	}
}

// BenchmarkFig7 samples Figure 7 (domain effect on one site, N = 64 and
// N = 512).
func BenchmarkFig7(b *testing.B) {
	g := grid.Grid5000()
	for _, n := range []int{64, 512} {
		for _, d := range []int{1, 32, 64} {
			b.Run(fmt.Sprintf("N%d/domains%d", n, d), func(b *testing.B) {
				reportRun(b, bench.Run{Grid: g, Sites: 1, M: 1 << 20, N: n,
					Algo: bench.TSQR, DomainsPerCluster: d, Tree: core.TreeGrid})
			})
		}
	}
}

// BenchmarkFig8 samples Figure 8 (best TSQR vs best ScaLAPACK) at the
// paper's headline point.
func BenchmarkFig8(b *testing.B) {
	g := grid.Grid5000()
	m, n := 1<<23, 64
	b.Run("TSQR-best", func(b *testing.B) {
		var best bench.Measurement
		for i := 0; i < b.N; i++ {
			best = bench.Measurement{}
			for _, sites := range []int{1, 2, 4} {
				r := bench.Execute(bench.Run{Grid: g, Sites: sites, M: m, N: n,
					Algo: bench.TSQR, DomainsPerCluster: 64, Tree: core.TreeGrid})
				if r.Gflops > best.Gflops {
					best = r
				}
			}
		}
		b.ReportMetric(best.Gflops, "Gflop/s")
	})
	b.Run("ScaLAPACK-best", func(b *testing.B) {
		var best bench.Measurement
		for i := 0; i < b.N; i++ {
			best = bench.Measurement{}
			for _, sites := range []int{1, 2, 4} {
				r := bench.Execute(bench.Run{Grid: g, Sites: sites, M: m, N: n, Algo: bench.ScaLAPACK})
				if r.Gflops > best.Gflops {
					best = r
				}
			}
		}
		b.ReportMetric(best.Gflops, "Gflop/s")
	})
}

// BenchmarkTreeAblation compares the reduction-tree shapes of the ablation
// study at one representative point: the tuned grid tree versus the
// topology-oblivious alternatives.
func BenchmarkTreeAblation(b *testing.B) {
	g := grid.Grid5000()
	for _, tree := range []core.Tree{core.TreeGrid, core.TreeBinary, core.TreeFlat, core.TreeBinaryShuffled} {
		b.Run(tree.String(), func(b *testing.B) {
			reportRun(b, bench.Run{Grid: g, Sites: 4, M: 1 << 22, N: 64,
				Algo: bench.TSQR, DomainsPerCluster: 16, Tree: tree})
		})
	}
}

// BenchmarkPropertyQR measures Property 1: Q+R costs about twice R-only.
func BenchmarkPropertyQR(b *testing.B) {
	g := grid.Grid5000()
	var r, qr bench.Measurement
	for i := 0; i < b.N; i++ {
		r = bench.Execute(bench.Run{Grid: g, Sites: 4, M: 1 << 22, N: 64,
			Algo: bench.TSQR, Tree: core.TreeGrid})
		qr = bench.Execute(bench.Run{Grid: g, Sites: 4, M: 1 << 22, N: 64,
			Algo: bench.TSQR, Tree: core.TreeGrid, WantQ: true})
	}
	b.ReportMetric(qr.Seconds/r.Seconds, "QR/R-time-ratio")
}

// --- Real-compute wall-clock benchmarks ---

// BenchmarkLocalQR measures the blocked Householder QR kernel on a
// tall-and-skinny block, the leaf operation of TSQR.
func BenchmarkLocalQR(b *testing.B) {
	for _, n := range []int{64, 512} {
		m := 1 << 16
		b.Run(fmt.Sprintf("%dx%d", m, n), func(b *testing.B) {
			a := matrix.Random(m, n, 1)
			tau := make([]float64, n)
			f := matrix.New(m, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				matrix.Copy(f, a)
				lapack.Dgeqrf(f, tau, 0)
			}
			b.ReportMetric(perfmodel.UsefulFlops(m, n, false)/1e9/b.Elapsed().Seconds()*float64(b.N), "Gflop/s")
		})
	}
}

// BenchmarkStackQR measures the TSQR reduction kernel: the structured QR
// of two stacked triangles.
func BenchmarkStackQR(b *testing.B) {
	for _, n := range []int{64, 512} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			r1 := lapack.TriuCopy(matrix.Random(n, n, 1))
			r2 := lapack.TriuCopy(matrix.Random(n, n, 2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lapack.StackQR(r1, r2)
			}
		})
	}
}

// BenchmarkParallelTSQR measures real in-process TSQR (goroutine ranks,
// actual arithmetic) against the sequential factorization of the same
// matrix, reporting the end-to-end wall-clock speedup.
func BenchmarkParallelTSQR(b *testing.B) {
	m, n := 1<<19, 64
	global := matrix.Random(m, n, 3)
	for _, procs := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("procs%d", procs), func(b *testing.B) {
			g := grid.SmallTestGrid(1, procs, 1)
			offsets := scalapack.BlockOffsets(m, procs)
			locals := make([]*matrix.Dense, procs)
			for r := 0; r < procs; r++ {
				locals[r] = scalapack.Distribute(global, offsets, r)
			}
			scratch := make([]*matrix.Dense, procs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				var wg sync.WaitGroup
				for r := 0; r < procs; r++ {
					wg.Add(1)
					go func(r int) { defer wg.Done(); scratch[r] = locals[r].Clone() }(r)
				}
				wg.Wait()
				b.StartTimer()
				w := mpi.NewWorld(g)
				w.Run(func(ctx *mpi.Ctx) {
					in := core.Input{M: m, N: n, Offsets: offsets, Local: scratch[ctx.Rank()]}
					core.Factorize(mpi.WorldComm(ctx), in, core.Config{Tree: core.TreeGrid})
				})
			}
			b.ReportMetric(perfmodel.UsefulFlops(m, n, false)/1e9/b.Elapsed().Seconds()*float64(b.N), "Gflop/s")
		})
	}
}

// BenchmarkPDGEQR2Real measures the real-arithmetic ScaLAPACK-style
// baseline in-process, for wall-clock comparison with BenchmarkParallelTSQR.
func BenchmarkPDGEQR2Real(b *testing.B) {
	m, n := 1<<19, 64
	global := matrix.Random(m, n, 4)
	procs := 8
	g := grid.SmallTestGrid(1, procs, 1)
	offsets := scalapack.BlockOffsets(m, procs)
	locals := make([]*matrix.Dense, procs)
	for r := 0; r < procs; r++ {
		locals[r] = scalapack.Distribute(global, offsets, r)
	}
	scratch := make([]*matrix.Dense, procs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for r := 0; r < procs; r++ {
			scratch[r] = locals[r].Clone()
		}
		b.StartTimer()
		w := mpi.NewWorld(g)
		w.Run(func(ctx *mpi.Ctx) {
			in := scalapack.Input{M: m, N: n, Offsets: offsets, Local: scratch[ctx.Rank()]}
			scalapack.PDGEQR2(mpi.WorldComm(ctx), in)
		})
	}
	b.ReportMetric(perfmodel.UsefulFlops(m, n, false)/1e9/b.Elapsed().Seconds()*float64(b.N), "Gflop/s")
}

// BenchmarkCAQRReal measures real-arithmetic CAQR on a general matrix.
func BenchmarkCAQRReal(b *testing.B) {
	m, n, nb := 2048, 512, 64
	global := matrix.Random(m, n, 5)
	procs := 8
	g := grid.SmallTestGrid(2, 4, 1)
	offsets := scalapack.BlockOffsets(m, procs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		scratch := make([]*matrix.Dense, procs)
		for r := 0; r < procs; r++ {
			scratch[r] = scalapack.Distribute(global, offsets, r)
		}
		b.StartTimer()
		w := mpi.NewWorld(g)
		w.Run(func(ctx *mpi.Ctx) {
			in := core.Input{M: m, N: n, Offsets: offsets, Local: scratch[ctx.Rank()]}
			core.CAQRFactorize(mpi.WorldComm(ctx), in, core.CAQRConfig{NB: nb})
		})
	}
	b.ReportMetric(perfmodel.UsefulFlops(m, n, false)/1e9/b.Elapsed().Seconds()*float64(b.N), "Gflop/s")
}

// BenchmarkTSLU measures tournament-pivoting LU end to end (real
// arithmetic) on a two-cluster world.
func BenchmarkTSLU(b *testing.B) {
	m, n := 1<<16, 32
	global := matrix.Random(m, n, 6)
	procs := 8
	g := grid.SmallTestGrid(2, 4, 1)
	offsets := scalapack.BlockOffsets(m, procs)
	locals := make([]*matrix.Dense, procs)
	for r := 0; r < procs; r++ {
		locals[r] = scalapack.Distribute(global, offsets, r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := mpi.NewWorld(g)
		w.Run(func(ctx *mpi.Ctx) {
			in := core.Input{M: m, N: n, Offsets: offsets, Local: locals[ctx.Rank()]}
			core.TSLUFactorize(mpi.WorldComm(ctx), in, core.TSLUConfig{Tree: core.TreeGrid})
		})
	}
}

// BenchmarkCholeskyQRvsTSQR compares the two orthogonalization schemes'
// wall-clock on the same block (CholeskyQR is faster but conditionally
// stable; see TestCholeskyQRLosesOrthogonality).
func BenchmarkCholeskyQRvsTSQR(b *testing.B) {
	m, n := 1<<17, 32
	global := matrix.Random(m, n, 7)
	procs := 8
	g := grid.SmallTestGrid(2, 4, 1)
	offsets := scalapack.BlockOffsets(m, procs)
	locals := make([]*matrix.Dense, procs)
	for r := 0; r < procs; r++ {
		locals[r] = scalapack.Distribute(global, offsets, r)
	}
	b.Run("CholeskyQR", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w := mpi.NewWorld(g)
			w.Run(func(ctx *mpi.Ctx) {
				in := core.Input{M: m, N: n, Offsets: offsets, Local: locals[ctx.Rank()]}
				core.CholeskyQR(mpi.WorldComm(ctx), in)
			})
		}
	})
	b.Run("TSQR", func(b *testing.B) {
		scratch := make([]*matrix.Dense, procs)
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			for r := 0; r < procs; r++ {
				scratch[r] = locals[r].Clone()
			}
			b.StartTimer()
			w := mpi.NewWorld(g)
			w.Run(func(ctx *mpi.Ctx) {
				in := core.Input{M: m, N: n, Offsets: offsets, Local: scratch[ctx.Rank()]}
				core.Factorize(mpi.WorldComm(ctx), in, core.Config{Tree: core.TreeGrid, WantQ: true})
			})
		}
	})
}

// BenchmarkSubspaceIteration measures the §II-E block eigensolver: cost
// per iteration on a distributed Laplacian.
func BenchmarkSubspaceIteration(b *testing.B) {
	m, k := 1<<15, 8
	procs := 8
	g := grid.SmallTestGrid(2, 4, 1)
	offsets := scalapack.BlockOffsets(m, procs)
	iters := 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := mpi.NewWorld(g)
		w.Run(func(ctx *mpi.Ctx) {
			comm := mpi.WorldComm(ctx)
			subspace.Iterate(comm, subspace.Laplacian1D{Offsets: offsets}, offsets,
				subspace.Options{BlockSize: k, MaxIter: iters, Tol: 1e-30, Seed: 1, Tree: core.TreeGrid})
		})
	}
	b.ReportMetric(b.Elapsed().Seconds()/float64(b.N)/float64(iters)*1e3, "ms/iter")
}
